// Multiplexed message-plane tests: the varint stream-id framing, the
// MuxDecoder's ring buffer (zero-copy and wrap-straddling paths), the
// MuxEndpoint/MuxTransport pair (per-stream backpressure, unknown-stream
// tolerance, reconnect redelivery, heartbeat death detection), the binary
// fleet-plane codec, and the FleetRicServer's period-keyed idempotency.
//
// Endpoint tests run on BOTH EventLoop backends (poll and epoll) — the
// backend must be invisible above the loop interface.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/fleet_engine.hpp"
#include "env/control_grid.hpp"
#include "net/event_loop.hpp"
#include "net/mux_framing.hpp"
#include "net/mux_transport.hpp"
#include "oran/fleet_plane.hpp"

namespace edgebol::net {
namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool eventually(const std::function<bool()>& cond, int timeout_ms = 20000) {
  const double deadline = now_ms() + timeout_ms;
  while (now_ms() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

MuxStreamConfig scfg(std::string name,
                     BackpressurePolicy policy = BackpressurePolicy::kBlock) {
  MuxStreamConfig c;
  c.name = std::move(name);
  c.policy = policy;
  return c;
}

// --- varint ------------------------------------------------------------

TEST(MuxFraming, VarintRoundTripsBoundaryValues) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ull << 32) - 1,
                                 1ull << 32,
                                 ~0ull};
  for (std::uint64_t v : cases) {
    char buf[kMaxVarintBytes];
    const std::size_t n = encode_varint(buf, v);
    ASSERT_GE(n, 1u);
    ASSERT_LE(n, kMaxVarintBytes);
    std::uint64_t back = 0;
    EXPECT_EQ(decode_varint(buf, n, &back), n) << v;
    EXPECT_EQ(back, v);
    // append_varint must produce identical bytes.
    std::string s;
    append_varint(&s, v);
    EXPECT_EQ(s, std::string(buf, n));
  }
}

TEST(MuxFraming, TruncatedAndOverlongVarintsAreRejected) {
  char buf[kMaxVarintBytes];
  const std::size_t n = encode_varint(buf, ~0ull);
  std::uint64_t v = 0;
  // Every strict prefix is truncated.
  for (std::size_t len = 0; len < n; ++len)
    EXPECT_EQ(decode_varint(buf, len, &v), 0u) << len;
  // Eleven continuation groups exceed kMaxVarintBytes: malformed.
  char runaway[12];
  std::memset(runaway, static_cast<char>(0x80), sizeof(runaway));
  EXPECT_EQ(decode_varint(runaway, sizeof(runaway), &v), 0u);
}

TEST(MuxFraming, WireBytesAreLengthThenVarintThenPayload) {
  std::string wire;
  append_mux_frame(&wire, 5, "abc");
  // L = |varint(5)| + |"abc"| = 1 + 3 = 4, big-endian.
  const unsigned char expect[] = {0, 0, 0, 4, 5, 'a', 'b', 'c'};
  ASSERT_EQ(wire.size(), sizeof(expect));
  for (std::size_t i = 0; i < sizeof(expect); ++i)
    EXPECT_EQ(static_cast<unsigned char>(wire[i]), expect[i]) << i;

  // encode_mux_header writes the same eight header bytes the append did.
  char hdr[kMuxMaxHeaderBytes];
  const std::size_t hn = encode_mux_header(hdr, 5, 3);
  ASSERT_EQ(hn, 5u);
  EXPECT_EQ(std::memcmp(hdr, wire.data(), hn), 0);
}

// --- MuxDecoder ----------------------------------------------------------

TEST(MuxDecoder, DecodesInterleavedPartialFramesAcrossStreams) {
  // Frames from different streams split at every possible byte boundary:
  // the worst fragmentation a TCP stream can hand readv.
  std::string wire;
  append_mux_frame(&wire, 1, "alpha");
  append_mux_frame(&wire, 300, std::string(700, 'x'));  // 2-byte varint
  append_mux_frame(&wire, 2, "");
  append_mux_frame(&wire, 1, "omega");

  MuxDecoder dec;
  std::vector<std::pair<std::uint64_t, std::string>> got;
  FrameView v;
  for (char c : wire) {
    ASSERT_EQ(dec.feed(&c, 1), 1u);
    while (dec.next(&v)) got.emplace_back(v.stream_id,
                                          std::string(v.data, v.size));
  }
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0], (std::pair<std::uint64_t, std::string>{1, "alpha"}));
  EXPECT_EQ(got[1].first, 300u);
  EXPECT_EQ(got[1].second, std::string(700, 'x'));
  EXPECT_EQ(got[2], (std::pair<std::uint64_t, std::string>{2, ""}));
  EXPECT_EQ(got[3], (std::pair<std::uint64_t, std::string>{1, "omega"}));
  EXPECT_FALSE(dec.poisoned());
}

TEST(MuxDecoder, HeartbeatsSurfaceWithZeroLength) {
  std::string wire;
  char hb[kMuxMaxHeaderBytes];
  wire.append(hb, encode_mux_heartbeat(hb));
  append_mux_frame(&wire, 9, "pay");
  MuxDecoder dec;
  ASSERT_EQ(dec.feed(wire.data(), wire.size()), wire.size());
  FrameView v;
  ASSERT_TRUE(dec.next(&v));
  EXPECT_TRUE(v.heartbeat);
  EXPECT_EQ(v.size, 0u);
  ASSERT_TRUE(dec.next(&v));
  EXPECT_FALSE(v.heartbeat);
  EXPECT_EQ(v.stream_id, 9u);
  EXPECT_EQ(std::string(v.data, v.size), "pay");
}

TEST(MuxDecoder, WrapStraddlingPayloadUsesScratchExactlyOnce) {
  // A small ring (max frame 64 -> ring 128) forced to wrap: feed/decode a
  // first frame to advance the head, then a frame whose payload straddles
  // the ring's physical end.
  MuxDecoder dec(64);
  const std::size_t cap = dec.capacity();
  ASSERT_EQ(cap & (cap - 1), 0u);  // power of two

  std::string first;
  append_mux_frame(&first, 1, std::string(60, 'a'));
  ASSERT_EQ(first.size(), 65u);  // 4B length + 1B varint + 60B payload
  ASSERT_EQ(dec.feed(first.data(), first.size()), first.size());
  FrameView v;
  ASSERT_TRUE(dec.next(&v));  // head advances to 65
  EXPECT_EQ(dec.scratch_copies(), 0u);

  std::string second;
  append_mux_frame(&second, 1, std::string(60, 'b'));
  ASSERT_EQ(dec.feed(second.data(), second.size()), second.size());
  ASSERT_TRUE(dec.next(&v));
  EXPECT_EQ(std::string(v.data, v.size), std::string(60, 'b'));
  EXPECT_FALSE(dec.poisoned());
  // The second frame occupies physical 65..130 in a 128-byte ring, so its
  // payload (70..130) straddles the wrap and must be assembled in scratch.
  EXPECT_EQ(dec.scratch_copies(), 1u);
}

TEST(MuxDecoder, OversizedFramePoisons) {
  MuxDecoder dec(64);
  std::string wire;
  append_mux_frame(&wire, 1, std::string(65, 'z'));
  (void)dec.feed(wire.data(), wire.size());
  FrameView v;
  EXPECT_FALSE(dec.next(&v));
  EXPECT_TRUE(dec.poisoned());
  dec.reset();
  EXPECT_FALSE(dec.poisoned());
  std::string ok;
  append_mux_frame(&ok, 1, "ok");
  (void)dec.feed(ok.data(), ok.size());
  ASSERT_TRUE(dec.next(&v));
  EXPECT_EQ(std::string(v.data, v.size), "ok");
}

// --- MuxEndpoint, on both loop backends ---------------------------------

class MuxEndpointTest : public ::testing::TestWithParam<NetBackend> {};

std::string backend_name(
    const ::testing::TestParamInfo<NetBackend>& param_info) {
  return param_info.param == NetBackend::kPoll ? "poll" : "epoll";
}

INSTANTIATE_TEST_SUITE_P(Backends, MuxEndpointTest,
                         ::testing::Values(NetBackend::kPoll,
                                           NetBackend::kEpoll),
                         backend_name);

TEST_P(MuxEndpointTest, StreamsRoundTripIndependently) {
  EventLoop loop(GetParam());
  MuxEndpointConfig cfg;
  cfg.name = "srv";
  auto server = MuxEndpoint::listen(&loop, 0, cfg);
  cfg.name = "cli";
  auto client = MuxEndpoint::connect(&loop, "127.0.0.1", server->local_port(),
                                     cfg);
  MuxTransport* s1 = server->open_stream(1, scfg("s1"));
  MuxTransport* s2 = server->open_stream(2, scfg("s2"));
  MuxTransport* c1 = client->open_stream(1, scfg("c1"));
  MuxTransport* c2 = client->open_stream(2, scfg("c2"));

  EXPECT_EQ(c1->send("one"), SendResult::kQueued);
  EXPECT_EQ(c2->send("two"), SendResult::kQueued);
  EXPECT_EQ(s2->receive(10000).value_or("?"), "two");
  EXPECT_EQ(s1->receive(10000).value_or("?"), "one");
  // And back the other way, on both streams.
  EXPECT_EQ(s1->send("ack1"), SendResult::kQueued);
  EXPECT_EQ(s2->send("ack2"), SendResult::kQueued);
  EXPECT_EQ(c1->receive(10000).value_or("?"), "ack1");
  EXPECT_EQ(c2->receive(10000).value_or("?"), "ack2");
  EXPECT_EQ(server->stats().unknown_stream_frames, 0u);
}

TEST_P(MuxEndpointTest, UnknownStreamIdIsDroppedWithoutPoisoningConnection) {
  EventLoop loop(GetParam());
  MuxEndpointConfig cfg;
  cfg.name = "srv";
  auto server = MuxEndpoint::listen(&loop, 0, cfg);
  cfg.name = "cli";
  auto client = MuxEndpoint::connect(&loop, "127.0.0.1", server->local_port(),
                                     cfg);
  MuxTransport* s1 = server->open_stream(1, scfg("s1"));
  MuxTransport* c1 = client->open_stream(1, scfg("c1"));
  // Stream 42 exists only on the client: its frames reach the server as
  // unknown-stream drops, and stream 1 keeps working on the SAME connection.
  MuxTransport* c42 = client->open_stream(42, scfg("c42"));
  EXPECT_EQ(c42->send("into the void"), SendResult::kQueued);
  EXPECT_EQ(c1->send("hello"), SendResult::kQueued);
  EXPECT_EQ(s1->receive(10000).value_or("?"), "hello");
  EXPECT_TRUE(eventually(
      [&] { return server->stats().unknown_stream_frames == 1; }));
  EXPECT_TRUE(server->established());
  EXPECT_EQ(server->stats().link.decode_resets, 0u);
}

TEST_P(MuxEndpointTest, PerStreamBackpressureIsolation) {
  EventLoop loop(GetParam());
  MuxEndpointConfig cfg;
  cfg.name = "srv";
  auto server = MuxEndpoint::listen(&loop, 0, cfg);
  cfg.name = "cli";
  auto client = MuxEndpoint::connect(&loop, "127.0.0.1", server->local_port(),
                                     cfg);
  // A tiny kShedOldest receive queue on one stream; a normal kBlock stream
  // beside it.
  MuxStreamConfig shed = scfg("shed", BackpressurePolicy::kShedOldest);
  shed.max_recv_queue = 4;
  MuxTransport* s_shed = server->open_stream(1, shed);
  MuxTransport* s_ok = server->open_stream(2, scfg("ok"));
  MuxTransport* c_shed = client->open_stream(1, shed);
  MuxTransport* c_ok = client->open_stream(2, scfg("ok"));
  ASSERT_TRUE(eventually([&] { return client->established(); }));

  // Flood the shed stream far past its bound while nobody drains it.
  for (int i = 0; i < 64; ++i)
    ASSERT_NE(c_shed->send("x"), SendResult::kClosed);
  EXPECT_EQ(c_ok->send("untouched"), SendResult::kQueued);
  // The healthy stream delivers despite its sibling overflowing...
  EXPECT_EQ(s_ok->receive(10000).value_or("?"), "untouched");
  // ...and the shed stream kept only its newest few frames.
  EXPECT_TRUE(eventually([&] { return s_shed->stats().recv_shed > 0; }));
  EXPECT_LE(s_shed->drain().size(), 4u);
  EXPECT_TRUE(server->established());
}

TEST_P(MuxEndpointTest, ReconnectRedeliversInFlightFramesOnThreeStreams) {
  EventLoop loop(GetParam());
  MuxEndpointConfig cfg;
  cfg.name = "srv";
  cfg.heartbeat_ms = 20;
  cfg.peer_timeout_ms = 120;
  auto server = MuxEndpoint::listen(&loop, 0, cfg);
  cfg.name = "cli";
  auto client = MuxEndpoint::connect(&loop, "127.0.0.1", server->local_port(),
                                     cfg);
  std::vector<MuxTransport*> s, c;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    std::string nm = "st";
    nm += std::to_string(id);
    s.push_back(server->open_stream(id, scfg(nm)));
    c.push_back(client->open_stream(id, scfg(nm)));
  }
  ASSERT_TRUE(eventually([&] { return client->established(); }));

  // Cut the wire, then queue frames on all three streams while down: the
  // per-stream queues must survive the reconnect and redeliver in order.
  client->force_disconnect();
  for (std::uint64_t id = 0; id < 3; ++id) {
    for (int k = 0; k < 3; ++k) {
      std::string m = "m";
      m += std::to_string(id);
      m += std::to_string(k);
      ASSERT_NE(c[id]->send(m), SendResult::kClosed);
    }
  }
  ASSERT_TRUE(eventually([&] { return client->established(); }));
  for (std::uint64_t id = 0; id < 3; ++id) {
    for (int k = 0; k < 3; ++k) {
      std::string want = "m";
      want += std::to_string(id);
      want += std::to_string(k);
      EXPECT_EQ(s[id]->receive(10000).value_or("?"), want)
          << "stream " << id << " frame " << k;
    }
  }
  EXPECT_GE(client->stats().link.reconnects, 1u);
}

TEST_P(MuxEndpointTest, HeartbeatsDetectPeerDeath) {
  EventLoop loop(GetParam());
  MuxEndpointConfig cfg;
  cfg.name = "srv";
  cfg.heartbeat_ms = 20;
  cfg.peer_timeout_ms = 150;
  auto server = MuxEndpoint::listen(&loop, 0, cfg);
  cfg.name = "cli";
  auto client = MuxEndpoint::connect(&loop, "127.0.0.1", server->local_port(),
                                     cfg);
  MuxTransport* cs = client->open_stream(1, scfg("c"));
  server->open_stream(1, scfg("s"));
  ASSERT_TRUE(eventually([&] { return client->established(); }));
  EXPECT_EQ(cs->send("up"), SendResult::kQueued);

  // A chaos partition on the client silences everything it sends (data AND
  // heartbeats); the server must declare the peer dead via timeout.
  // Partition windows arm from the first established transition, so instead
  // kill the link the blunt way and watch supervision notice.
  const std::uint64_t before = server->stats().link.peer_timeouts +
                               client->stats().link.reconnects;
  client->force_disconnect();
  ASSERT_TRUE(eventually([&] {
    return server->stats().link.peer_timeouts +
               client->stats().link.reconnects >
           before;
  }));
  // And the pair heals on its own.
  ASSERT_TRUE(eventually(
      [&] { return client->established() && server->established(); }));
}

TEST_P(MuxEndpointTest, ChaosPartitionStarvesPeerThenRecovers) {
  EventLoop loop(GetParam());
  MuxEndpointConfig cfg;
  cfg.name = "srv";
  cfg.heartbeat_ms = 20;
  cfg.peer_timeout_ms = 150;
  auto server = MuxEndpoint::listen(&loop, 0, cfg);
  cfg.name = "cli";
  cfg.chaos.partitions.push_back({0, 400, false});  // from establishment
  cfg.chaos_seed = 11;
  auto client = MuxEndpoint::connect(&loop, "127.0.0.1", server->local_port(),
                                     cfg);
  MuxTransport* cs = client->open_stream(1, scfg("c"));
  MuxTransport* ss = server->open_stream(1, scfg("s"));
  ASSERT_TRUE(eventually([&] { return client->established(); }));

  // During the partition the client's sends (and heartbeats) are swallowed:
  // the server times the peer out at least once.
  EXPECT_EQ(cs->send("swallowed?"), SendResult::kQueued);
  ASSERT_TRUE(eventually(
      [&] { return server->stats().link.peer_timeouts >= 1; }));
  EXPECT_TRUE(eventually(
      [&] { return client->stats().link.chaos_partition_drops > 0; }));
  // A chaos partition drop is a true loss (the frame was already handed to
  // the wire when the shim swallowed it) — same semantics as the TCP plane.
  // What IS guaranteed: once the window closes the pair heals and new
  // traffic flows end to end. The window is 400ms from the FIRST
  // establishment (the shim arms once), so sleep past it before sending —
  // a send queued during the window would be consumed and dropped too.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  ASSERT_TRUE(eventually(
      [&] { return client->established() && server->established(); },
      5000));
  for (int i = 0; i < 50; ++i) {
    if (cs->send("after") == SendResult::kQueued) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(ss->receive(20000).value_or("?"), "after");
}

TEST_P(MuxEndpointTest, DrainAllPreservesPerStreamOrderAcrossStreams) {
  EventLoop loop(GetParam());
  MuxEndpointConfig cfg;
  cfg.name = "srv";
  auto server = MuxEndpoint::listen(&loop, 0, cfg);
  cfg.name = "cli";
  auto client = MuxEndpoint::connect(&loop, "127.0.0.1", server->local_port(),
                                     cfg);
  const int kStreams = 5;
  const int kFrames = 20;
  std::vector<MuxTransport*> c;
  for (std::uint64_t id = 1; id <= kStreams; ++id) {
    std::string nm = "d";
    nm += std::to_string(id);
    server->open_stream(id, scfg(nm));
    c.push_back(client->open_stream(id, scfg(nm)));
  }
  for (int k = 0; k < kFrames; ++k)
    for (int i = 0; i < kStreams; ++i) {
      std::string m = std::to_string(k);
      ASSERT_NE(c[i]->send(m), SendResult::kClosed);
    }

  std::vector<StreamFrame> got;
  ASSERT_TRUE(eventually([&] {
    server->drain_all(&got);
    return got.size() == static_cast<std::size_t>(kStreams * kFrames);
  }));
  // Per-stream order must be intact regardless of wire interleaving.
  std::vector<int> next(kStreams + 1, 0);
  for (const StreamFrame& f : got) {
    ASSERT_GE(f.stream_id, 1u);
    ASSERT_LE(f.stream_id, static_cast<std::uint64_t>(kStreams));
    EXPECT_EQ(f.payload, std::to_string(next[f.stream_id]));
    ++next[f.stream_id];
  }
}

// --- fleet plane ---------------------------------------------------------

oran::FleetIndication sample_indication() {
  oran::FleetIndication ind;
  ind.period = 41;
  ind.ctx = {3.0, 17.25, 2.5};
  ind.has_feedback = true;
  ind.policy_index = 624;
  ind.prev_ctx = {2.0, 16.5, 1.25};
  ind.meas.delay_s = 0.123456789012345;
  ind.meas.map = 0.875;
  ind.meas.server_power_w = 215.0625;
  ind.meas.bs_power_w = 37.5;
  return ind;
}

TEST(FleetPlane, IndicationRoundTripsBitExactAtPinnedSize) {
  const oran::FleetIndication ind = sample_indication();
  std::string wire;
  oran::encode(ind, &wire);
  ASSERT_EQ(wire.size(), oran::kFleetIndicationBytes);
  const auto back = oran::decode_fleet_indication(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->period, ind.period);
  EXPECT_EQ(back->ctx.n_users, ind.ctx.n_users);
  EXPECT_EQ(back->ctx.cqi_mean, ind.ctx.cqi_mean);
  EXPECT_EQ(back->ctx.cqi_var, ind.ctx.cqi_var);
  EXPECT_EQ(back->has_feedback, true);
  EXPECT_EQ(back->policy_index, ind.policy_index);
  EXPECT_EQ(back->prev_ctx.cqi_mean, ind.prev_ctx.cqi_mean);
  // Doubles must cross bit-exactly, not via a decimal round trip.
  EXPECT_EQ(back->meas.delay_s, ind.meas.delay_s);
  EXPECT_EQ(back->meas.map, ind.meas.map);
  EXPECT_EQ(back->meas.server_power_w, ind.meas.server_power_w);
  EXPECT_EQ(back->meas.bs_power_w, ind.meas.bs_power_w);
}

TEST(FleetPlane, PolicyRoundTripsBitExactAtPinnedSize) {
  oran::FleetPolicy pol;
  pol.period = 7;
  pol.policy_index = 88;
  pol.policy.resolution = 0.6;
  pol.policy.airtime = 0.55;
  pol.policy.gpu_speed = 0.84999999999999998;
  pol.policy.mcs_cap = 23;
  std::string wire;
  oran::encode(pol, &wire);
  ASSERT_EQ(wire.size(), oran::kFleetPolicyBytes);
  const auto back = oran::decode_fleet_policy(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->period, pol.period);
  EXPECT_EQ(back->policy_index, pol.policy_index);
  EXPECT_TRUE(back->policy == pol.policy);
}

TEST(FleetPlane, MalformedFramesAreRejected) {
  const oran::FleetIndication ind = sample_indication();
  std::string wire;
  oran::encode(ind, &wire);
  // Wrong kind byte.
  std::string bad = wire;
  bad[0] = 'Z';
  EXPECT_FALSE(oran::decode_fleet_indication(bad).has_value());
  // Truncated and padded.
  EXPECT_FALSE(
      oran::decode_fleet_indication(wire.substr(0, wire.size() - 1))
          .has_value());
  EXPECT_FALSE(oran::decode_fleet_indication(wire + "x").has_value());
  // An indication is not a policy.
  EXPECT_FALSE(oran::decode_fleet_policy(wire).has_value());
}

TEST(FleetPlane, ServerAnswersDuplicateIndicationsFromCacheWithoutRedeciding) {
  env::GridSpec spec;
  spec.levels_per_dim = 3;
  core::FleetEngineConfig ecfg;
  ecfg.num_threads = 1;
  ecfg.cell.gp_budget = 16;
  core::FleetEngine engine(env::ControlGrid{spec}, ecfg);
  const std::size_t kCells = 4;
  for (std::size_t i = 0; i < kCells; ++i) engine.add_cell();

  EventLoop sloop;
  EventLoop cloop;
  oran::FleetPlaneConfig pcfg;
  pcfg.num_connections = 2;
  oran::FleetRicServer server(&sloop, &engine, kCells, pcfg);
  ASSERT_EQ(server.num_connections(), 2u);
  oran::FleetCellBank bank(&cloop, "127.0.0.1", server.ports(), kCells, pcfg);
  ASSERT_TRUE(bank.wait_established(15000));

  std::atomic<bool> stop{false};
  std::thread srv([&] {
    while (!stop.load()) {
      if (server.poll_once() == 0) (void)server.wait_activity(10);
    }
  });

  oran::FleetIndication ind;
  ind.period = 0;
  ind.ctx = {2.0, 18.0, 1.0};
  for (std::size_t cell = 0; cell < kCells; ++cell)
    ASSERT_EQ(bank.send_indication(cell, ind), SendResult::kQueued);

  std::vector<std::pair<std::size_t, oran::FleetPolicy>> got;
  ASSERT_TRUE(eventually([&] {
    bank.drain_policies(&got);
    return got.size() == kCells;
  }));
  std::vector<oran::FleetPolicy> first(kCells);
  for (const auto& [cell, fp] : got) first[cell] = fp;

  // Resend period 0 on every cell (a redelivery after reconnect): the
  // server must answer from cache — same policy, no fresh decisions, no
  // GP re-conditioning.
  const std::uint64_t decided = server.decisions();
  got.clear();
  for (std::size_t cell = 0; cell < kCells; ++cell)
    ASSERT_EQ(bank.send_indication(cell, ind), SendResult::kQueued);
  ASSERT_TRUE(eventually([&] {
    bank.drain_policies(&got);
    return got.size() == kCells;
  }));
  for (const auto& [cell, fp] : got) {
    EXPECT_EQ(fp.period, 0);
    EXPECT_EQ(fp.policy_index, first[cell].policy_index);
    EXPECT_TRUE(fp.policy == first[cell].policy);
  }
  EXPECT_EQ(server.decisions(), decided);
  EXPECT_EQ(server.duplicate_indications(), kCells);

  // An indication OLDER than the newest seen is stale: dropped outright.
  oran::FleetIndication fresh = ind;
  fresh.period = 1;
  fresh.has_feedback = true;
  fresh.policy_index = first[0].policy_index;
  fresh.prev_ctx = ind.ctx;
  fresh.meas.delay_s = 0.1;
  fresh.meas.map = 0.9;
  fresh.meas.server_power_w = 200.0;
  fresh.meas.bs_power_w = 30.0;
  ASSERT_EQ(bank.send_indication(0, fresh), SendResult::kQueued);
  got.clear();
  ASSERT_TRUE(eventually([&] {
    bank.drain_policies(&got);
    return !got.empty();
  }));
  oran::FleetIndication old = ind;
  old.period = -5;
  ASSERT_EQ(bank.send_indication(0, old), SendResult::kQueued);
  ASSERT_TRUE(eventually([&] { return server.stale_indications() >= 1; }));

  stop.store(true);
  srv.join();
}

}  // namespace
}  // namespace edgebol::net
