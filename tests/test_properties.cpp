// Randomized property tests (parameterized over seeds): invariants that
// must hold for *any* instance, not just the hand-picked cases of the unit
// suites.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/safe_set.hpp"
#include "env/scenarios.hpp"
#include "gp/gp_regressor.hpp"
#include "service/pipeline.hpp"

namespace edgebol {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

// ---- Safe set (eq. 8) ----

std::vector<gp::Prediction> random_posterior(Rng& rng, std::size_t n) {
  std::vector<gp::Prediction> out(n);
  for (auto& p : out) {
    p.mean = rng.uniform(0.0, 1.0);
    p.variance = rng.uniform(0.0, 0.2);
  }
  return out;
}

TEST_P(SeededProperty, SafeSetShrinksMonotonicallyInBeta) {
  Rng rng(GetParam());
  const auto delay = random_posterior(rng, 200);
  const auto map = random_posterior(rng, 200);
  std::vector<std::size_t> prev;
  bool first = true;
  for (double beta : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    const auto safe =
        core::compute_safe_set(delay, map, 0.6, 0.4, beta, {});
    if (!first) {
      // Every index safe at the larger beta was safe at the smaller one.
      EXPECT_TRUE(std::includes(prev.begin(), prev.end(), safe.begin(),
                                safe.end()))
          << "beta " << beta;
    }
    prev = safe;
    first = false;
  }
}

TEST_P(SeededProperty, SafeSetGrowsWithLooserThresholds) {
  Rng rng(GetParam() + 1000);
  const auto delay = random_posterior(rng, 200);
  const auto map = random_posterior(rng, 200);
  const auto tight = core::compute_safe_set(delay, map, 0.4, 0.6, 2.0, {});
  const auto loose = core::compute_safe_set(delay, map, 0.7, 0.3, 2.0, {});
  EXPECT_TRUE(
      std::includes(loose.begin(), loose.end(), tight.begin(), tight.end()));
}

// ---- GP posterior (eqs. 3-4) ----

TEST_P(SeededProperty, PosteriorVarianceNeverExceedsPriorAndShrinks) {
  Rng rng(GetParam() + 2000);
  gp::GpRegressor gp(
      std::make_unique<gp::Matern32Kernel>(linalg::Vector{0.5, 0.5}, 1.0),
      1e-2);
  const linalg::Vector probe{rng.uniform(), rng.uniform()};
  double prev_var = gp.predict(probe).variance;
  EXPECT_NEAR(prev_var, 1.0, 1e-12);
  for (int i = 0; i < 25; ++i) {
    gp.add({rng.uniform(), rng.uniform()}, rng.normal());
    const double var = gp.predict(probe).variance;
    EXPECT_LE(var, prev_var + 1e-9) << "observation " << i;
    EXPECT_GE(var, 0.0);
    prev_var = var;
  }
}

TEST_P(SeededProperty, TrackedCacheAgreesWithDirectPredictions) {
  Rng rng(GetParam() + 3000);
  gp::GpRegressor gp(
      std::make_unique<gp::Matern32Kernel>(linalg::Vector{0.7, 0.9}, 0.8),
      5e-3);
  std::vector<linalg::Vector> cands;
  for (int i = 0; i < 12; ++i) cands.push_back({rng.uniform(), rng.uniform()});
  gp.track_candidates(cands);
  for (int i = 0; i < 20; ++i) {
    gp.add({rng.uniform(), rng.uniform()}, rng.normal(0.0, 0.5));
  }
  for (std::size_t j = 0; j < cands.size(); ++j) {
    const gp::Prediction p = gp.predict(cands[j]);
    EXPECT_NEAR(gp.tracked_mean(j), p.mean, 1e-7);
    EXPECT_NEAR(gp.tracked_variance(j), p.variance, 1e-7);
  }
}

// ---- Pipeline ----

service::PipelineInputs random_pipeline(Rng& rng, std::size_t users) {
  service::PipelineInputs in;
  for (std::size_t u = 0; u < users; ++u) {
    service::PipelineUser pu;
    pu.solo_app_rate_bps = rng.uniform(0.5e6, 8e6);
    pu.solo_phy_rate_bps = pu.solo_app_rate_bps * 10.0;
    pu.spectral_eff = rng.uniform(0.5, 3.9);
    pu.eff_mcs = rng.uniform(0.0, 20.0);
    in.users.push_back(pu);
  }
  in.image_bits = rng.uniform(0.1e6, 0.8e6);
  in.preprocess_s = rng.uniform(0.01, 0.05);
  in.response_bits = 24e3;
  in.grant_latency_s = 0.01;
  in.gpu_service_s = rng.uniform(0.08, 0.3);
  in.airtime = rng.uniform(0.1, 1.0);
  return in;
}

TEST_P(SeededProperty, PipelineOutputsAreAlwaysSane) {
  Rng rng(GetParam() + 4000);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(6);
    const auto in = random_pipeline(rng, n);
    const auto out = service::solve_pipeline(in);
    ASSERT_EQ(out.delay_s.size(), n);
    for (std::size_t u = 0; u < n; ++u) {
      EXPECT_GT(out.delay_s[u], 0.0);
      EXPECT_NEAR(out.frame_rate_hz[u] * out.delay_s[u], 1.0, 1e-6);
    }
    EXPECT_GE(out.bs_duty, 0.0);
    EXPECT_LE(out.bs_duty, 1.0);
    EXPECT_GE(out.gpu_utilization, 0.0);
    EXPECT_LE(out.gpu_utilization, in.max_gpu_utilization + 1e-9);
    EXPECT_GE(out.radio_congestion, 1.0);
    EXPECT_GE(out.queue_wait_s, 0.0);
  }
}

TEST_P(SeededProperty, FasterGpuNeverHurtsDelay) {
  Rng rng(GetParam() + 5000);
  auto in = random_pipeline(rng, 2);
  auto slow = in;
  slow.gpu_service_s = in.gpu_service_s * 1.5;
  const auto fast_out = service::solve_pipeline(in);
  const auto slow_out = service::solve_pipeline(slow);
  for (std::size_t u = 0; u < 2; ++u) {
    EXPECT_LE(fast_out.delay_s[u], slow_out.delay_s[u] + 1e-9);
  }
}

TEST_P(SeededProperty, ExternalGpuLoadSelfRegulatesTheService) {
  // In the closed loop, foreign GPU load slows the stop-and-wait cycles, so
  // the service's *own* GPU share and total frame rate must not grow.
  // (Per-user delays are NOT monotone: when other users slow down, one
  // user's queue can actually shorten — the fixed point redistributes.)
  Rng rng(GetParam() + 6000);
  auto in = random_pipeline(rng, 3);
  auto loaded = in;
  loaded.external_gpu_utilization = 0.4;
  const auto base = service::solve_pipeline(in);
  const auto busy = service::solve_pipeline(loaded);
  EXPECT_LE(busy.own_gpu_utilization, base.own_gpu_utilization + 1e-9);
  EXPECT_LE(busy.total_frame_rate_hz, base.total_frame_rate_hz + 1e-9);
}

// ---- Testbed ----

TEST_P(SeededProperty, ExpectedMeasurementIsSeedIndependent) {
  env::TestbedConfig a_cfg, b_cfg;
  a_cfg.seed = GetParam();
  b_cfg.seed = GetParam() + 77;
  env::Testbed a = env::make_static_testbed(30.0, a_cfg);
  env::Testbed b = env::make_static_testbed(30.0, b_cfg);
  env::ControlPolicy p;
  p.resolution = 0.7;
  p.airtime = 0.5;
  EXPECT_DOUBLE_EQ(a.expected(p).delay_s, b.expected(p).delay_s);
  EXPECT_DOUBLE_EQ(a.expected(p).server_power_w, b.expected(p).server_power_w);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace edgebol
