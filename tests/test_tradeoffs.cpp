// Property tests encoding the paper's §3 measurement study: every qualitative
// trade-off reported in Figs. 1-6 must hold on the simulator's noise-free
// expectations, across parameterized sweeps of the other policies.

#include <gtest/gtest.h>

#include <string>

#include "env/scenarios.hpp"
#include "env/testbed.hpp"

namespace edgebol::env {
namespace {

Measurement expect_at(Testbed& tb, double res, double air, double gpu,
                      int mcs) {
  ControlPolicy p;
  p.resolution = res;
  p.airtime = air;
  p.gpu_speed = gpu;
  p.mcs_cap = mcs;
  return tb.expected(p);
}

// ---------------------------------------------------------------- Fig. 1 --

class ResolutionSweep : public ::testing::TestWithParam<double> {};

TEST_P(ResolutionSweep, HigherResolutionMeansHigherDelay) {
  Testbed tb = make_static_testbed(35.0);
  const double eta = GetParam();
  const Measurement lo = expect_at(tb, eta, 1.0, 1.0, 20);
  const Measurement hi = expect_at(tb, eta + 0.25, 1.0, 1.0, 20);
  EXPECT_GT(hi.delay_s, lo.delay_s) << "eta " << eta;
}

TEST_P(ResolutionSweep, HigherResolutionMeansHigherPrecision) {
  Testbed tb = make_static_testbed(35.0);
  const double eta = GetParam();
  EXPECT_GT(expect_at(tb, eta + 0.25, 1.0, 1.0, 20).map,
            expect_at(tb, eta, 1.0, 1.0, 20).map);
}

INSTANTIATE_TEST_SUITE_P(Fig1, ResolutionSweep,
                         ::testing::Values(0.25, 0.4, 0.5, 0.6, 0.75));

// ---------------------------------------------------------------- Fig. 2 --

class AirtimeSweep : public ::testing::TestWithParam<double> {};

TEST_P(AirtimeSweep, MoreAirtimeMeansLowerDelay) {
  Testbed tb = make_static_testbed(35.0);
  const double res = GetParam();
  EXPECT_LT(expect_at(tb, res, 1.0, 1.0, 20).delay_s,
            expect_at(tb, res, 0.2, 1.0, 20).delay_s);
}

TEST_P(AirtimeSweep, MoreAirtimeMeansHigherFrameRateAndServerPower) {
  // "Higher airtime, higher frame rate, higher GPU resources" (Fig. 2).
  Testbed tb = make_static_testbed(35.0);
  const double res = GetParam();
  const Measurement lo = expect_at(tb, res, 0.2, 1.0, 20);
  const Measurement hi = expect_at(tb, res, 1.0, 1.0, 20);
  EXPECT_GT(hi.total_frame_rate_hz, lo.total_frame_rate_hz);
  EXPECT_GT(hi.server_power_w, lo.server_power_w);
}

INSTANTIATE_TEST_SUITE_P(Fig2, AirtimeSweep,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0));

// ---------------------------------------------------------------- Fig. 3 --

class GpuSweep : public ::testing::TestWithParam<double> {};

TEST_P(GpuSweep, HigherGpuSpeedCutsDelayAndRaisesPower) {
  Testbed tb = make_static_testbed(35.0);
  const double res = GetParam();
  const Measurement slow = expect_at(tb, res, 1.0, 0.1, 20);
  const Measurement fast = expect_at(tb, res, 1.0, 1.0, 20);
  EXPECT_LT(fast.delay_s, slow.delay_s);
  EXPECT_LT(fast.gpu_delay_s, slow.gpu_delay_s);
  EXPECT_GT(fast.server_power_w, slow.server_power_w);
}

TEST_P(GpuSweep, LowerResolutionMeansHigherGpuDelay) {
  // Fig. 3 (bottom): low-res frames make the detector work harder.
  Testbed tb = make_static_testbed(35.0);
  const double gamma = GetParam();
  EXPECT_GT(expect_at(tb, 0.25, 1.0, gamma, 20).gpu_delay_s,
            expect_at(tb, 1.0, 1.0, gamma, 20).gpu_delay_s);
}

INSTANTIATE_TEST_SUITE_P(Fig3, GpuSweep,
                         ::testing::Values(0.1, 0.45, 0.75, 1.0));

// ---------------------------------------------------------------- Fig. 4 --

TEST(Fig4, HigherPrecisionCostsLessServerPower) {
  // Counter-intuitive headline of Fig. 4: higher-res images yield higher
  // mAP *and* lower server power (fewer, easier inferences).
  Testbed tb = make_static_testbed(35.0);
  const Measurement lo = expect_at(tb, 0.25, 1.0, 1.0, 20);
  const Measurement hi = expect_at(tb, 1.0, 1.0, 1.0, 20);
  EXPECT_GT(hi.map, lo.map);
  EXPECT_LT(hi.server_power_w, lo.server_power_w);
}

TEST(Fig4, ServerPowerSpansPrototypeRange) {
  Testbed tb = make_static_testbed(35.0);
  const Measurement lo = expect_at(tb, 1.0, 1.0, 1.0, 20);
  const Measurement hi = expect_at(tb, 0.25, 1.0, 1.0, 20);
  EXPECT_GT(lo.server_power_w, 90.0);
  EXPECT_LT(hi.server_power_w, 200.0);
  EXPECT_GT(hi.server_power_w - lo.server_power_w, 15.0);
}

// ---------------------------------------------------------------- Fig. 5 --

class McsSweep : public ::testing::TestWithParam<double> {};

TEST_P(McsSweep, HigherMcsMeansLowerBsPowerAtLowLoad) {
  Testbed tb = make_static_testbed(35.0);
  const double res = GetParam();
  const Measurement low_mcs = expect_at(tb, res, 1.0, 1.0, 6);
  const Measurement high_mcs = expect_at(tb, res, 1.0, 1.0, 20);
  EXPECT_LT(high_mcs.bs_power_w, low_mcs.bs_power_w) << "res " << res;
}

TEST_P(McsSweep, LowerResolutionMeansLowerBsPower) {
  Testbed tb = make_static_testbed(35.0);
  (void)GetParam();
  EXPECT_LT(expect_at(tb, 0.25, 1.0, 1.0, 20).bs_power_w,
            expect_at(tb, 1.0, 1.0, 1.0, 20).bs_power_w);
}

TEST_P(McsSweep, MoreAirtimeMeansHigherBsPower) {
  Testbed tb = make_static_testbed(35.0);
  const double res = GetParam();
  EXPECT_GT(expect_at(tb, res, 1.0, 1.0, 20).bs_power_w,
            expect_at(tb, res, 0.2, 1.0, 20).bs_power_w);
}

INSTANTIATE_TEST_SUITE_P(Fig5, McsSweep, ::testing::Values(0.5, 0.75, 1.0));

TEST(Fig5, BsPowerInPrototypeRange) {
  Testbed tb = make_static_testbed(35.0);
  const Measurement m = expect_at(tb, 1.0, 1.0, 1.0, 20);
  EXPECT_GT(m.bs_power_w, 4.5);
  EXPECT_LT(m.bs_power_w, 7.5);
}

// ---------------------------------------------------------------- Fig. 6 --

TEST(Fig6, TenXLoadInvertsTheMcsEffectForHighResolution) {
  Testbed tb = make_static_testbed(35.0, high_load_config(10.0));
  const Measurement low_mcs = expect_at(tb, 1.0, 1.0, 1.0, 10);
  const Measurement high_mcs = expect_at(tb, 1.0, 1.0, 1.0, 20);
  // Saturated BBU: duty pinned, so higher MCS now costs more.
  EXPECT_GT(high_mcs.bs_power_w, low_mcs.bs_power_w);
}

TEST(Fig6, LowResolutionKeepsTheLowLoadOrdering) {
  Testbed tb = make_static_testbed(35.0, high_load_config(10.0));
  const Measurement low_mcs = expect_at(tb, 0.25, 1.0, 1.0, 8);
  const Measurement high_mcs = expect_at(tb, 0.25, 1.0, 1.0, 20);
  EXPECT_LT(high_mcs.bs_power_w, low_mcs.bs_power_w);
}

TEST(Fig6, TenXLoadRaisesBsPowerOverall) {
  Testbed base = make_static_testbed(35.0);
  Testbed loaded = make_static_testbed(35.0, high_load_config(10.0));
  EXPECT_GT(expect_at(loaded, 1.0, 1.0, 1.0, 20).bs_power_w,
            expect_at(base, 1.0, 1.0, 1.0, 20).bs_power_w);
}

// --------------------------------------------------------------- context --

TEST(Context, PoorChannelRaisesDelay) {
  Testbed good = make_static_testbed(35.0);
  Testbed poor = make_static_testbed(8.0);
  EXPECT_GT(expect_at(poor, 1.0, 1.0, 1.0, 20).delay_s,
            expect_at(good, 1.0, 1.0, 1.0, 20).delay_s);
}

TEST(Context, MoreUsersRaiseWorstDelayAndServerPower) {
  Testbed one = make_heterogeneous_testbed(1);
  Testbed six = make_heterogeneous_testbed(6);
  const Measurement m1 = expect_at(one, 1.0, 1.0, 1.0, 20);
  const Measurement m6 = expect_at(six, 1.0, 1.0, 1.0, 20);
  EXPECT_GT(m6.delay_s, m1.delay_s);
  EXPECT_GT(m6.server_power_w, m1.server_power_w);
}

}  // namespace
}  // namespace edgebol::env
