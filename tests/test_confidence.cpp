#include "service/confidence_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/stats.hpp"
#include "core/edgebol.hpp"
#include "env/scenarios.hpp"

namespace edgebol::service {
namespace {

TEST(Confidence, MeanConfidenceTracksPrecision) {
  const ConfidencePrecision cp;
  double prev = 0.0;
  for (double eta : {0.25, 0.5, 0.75, 1.0}) {
    const double c = cp.mean_confidence(eta);
    EXPECT_GT(c, prev);
    EXPECT_GE(c, cp.params().confidence_floor);
    EXPECT_LE(c,
              cp.params().confidence_floor + cp.params().confidence_span);
    prev = c;
  }
}

TEST(Confidence, CalibrationInvertsTheMeanCurve) {
  const ConfidencePrecision cp;
  for (double eta : {0.3, 0.5, 0.8, 1.0}) {
    EXPECT_NEAR(cp.calibrate(cp.mean_confidence(eta)),
                cp.map_model().mean_map(eta), 1e-9);
  }
}

TEST(Confidence, CalibrationClampsOutOfRangeScores) {
  const ConfidencePrecision cp;
  EXPECT_DOUBLE_EQ(cp.calibrate(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cp.calibrate(1.0), cp.map_model().params().max_map);
}

TEST(Confidence, EstimateIsUnbiasedButNoisierThanLabeledMap) {
  const ConfidencePrecision cp;
  const MapModel labeled;
  Rng rng(3);
  RunningStats est, lab;
  for (int i = 0; i < 20000; ++i) {
    est.add(cp.estimate_map(0.7, rng));
    lab.add(labeled.sample_map(0.7, rng));
  }
  EXPECT_NEAR(est.mean(), labeled.mean_map(0.7), 0.01);
  EXPECT_GT(est.stddev(), lab.stddev());
}

TEST(Confidence, InvalidParamsThrow) {
  ConfidenceParams bad;
  bad.confidence_span = 0.0;
  EXPECT_THROW(ConfidencePrecision(MapParams{}, bad), std::invalid_argument);
  bad = ConfidenceParams{};
  bad.confidence_floor = 0.9;  // floor + span > 1
  EXPECT_THROW(ConfidencePrecision(MapParams{}, bad), std::invalid_argument);
  bad = ConfidenceParams{};
  bad.confidence_noise = -1.0;
  EXPECT_THROW(ConfidencePrecision(MapParams{}, bad), std::invalid_argument);
}

TEST(Confidence, TestbedCanRunLabelFree) {
  env::TestbedConfig cfg;
  cfg.precision_metric = env::PrecisionMetric::kConfidenceEstimate;
  env::Testbed tb = env::make_static_testbed(35.0, cfg);
  env::ControlPolicy p;
  RunningStats maps;
  for (int i = 0; i < 200; ++i) maps.add(tb.step(p).map);
  EXPECT_NEAR(maps.mean(), tb.expected(p).map, 0.05);
  EXPECT_GT(maps.stddev(), 0.0);
}

TEST(Confidence, EdgeBolConvergesOnLabelFreePrecision) {
  env::TestbedConfig tcfg;
  tcfg.precision_metric = env::PrecisionMetric::kConfidenceEstimate;
  env::Testbed tb = env::make_static_testbed(35.0, tcfg);

  env::GridSpec spec;
  spec.levels_per_dim = 6;
  core::EdgeBolConfig cfg;
  cfg.weights = {1.0, 8.0};
  cfg.constraints = {0.4, 0.5};
  // The label-free estimate is noisier; tell the mAP surrogate.
  cfg.map_hp = core::default_map_hyperparams();
  cfg.map_hp.noise_variance = 2.0e-3;
  core::EdgeBol agent(env::ControlGrid{spec}, cfg);

  RunningStats head, tail;
  int viol = 0;
  for (int t = 0; t < 100; ++t) {
    const env::Context c = tb.context();
    const core::Decision d = agent.select(c);
    const env::Measurement m = tb.step(d.policy);
    agent.update(c, d.policy_index, m);
    const double u = cfg.weights.cost(m.server_power_w, m.bs_power_w);
    if (t < 5) head.add(u);
    if (t >= 70) {
      tail.add(u);
      viol += (m.delay_s > 0.4 * 1.1);
    }
  }
  EXPECT_LT(tail.mean(), head.mean());
  EXPECT_LE(viol, 3);
}

}  // namespace
}  // namespace edgebol::service
