#include <gtest/gtest.h>

#include <stdexcept>

#include "ran/cqi.hpp"
#include "ran/mcs_tables.hpp"

namespace edgebol::ran {
namespace {

TEST(McsTables, SpectralEfficiencyIsMonotone) {
  for (int m = 1; m <= kMaxUlMcs; ++m) {
    EXPECT_GT(spectral_efficiency(m), spectral_efficiency(m - 1))
        << "at mcs " << m;
  }
}

TEST(McsTables, ModulationOrderIsNonDecreasing) {
  EXPECT_EQ(modulation_bits(0), 2);
  EXPECT_EQ(modulation_bits(kMaxUlMcs), 6);
  for (int m = 1; m <= kMaxUlMcs; ++m) {
    EXPECT_GE(modulation_bits(m), modulation_bits(m - 1));
  }
}

TEST(McsTables, CodeRateStaysBelowOne) {
  for (int m = 0; m <= kMaxUlMcs; ++m) {
    EXPECT_GT(code_rate(m), 0.0);
    EXPECT_LT(code_rate(m), 1.0);
  }
}

TEST(McsTables, TbsScalesLinearlyWithPrbs) {
  EXPECT_NEAR(tbs_bits(10, 100), 10.0 * tbs_bits(10, 10), 1e-9);
}

TEST(McsTables, PeakRateAround50Mbps) {
  // The paper quotes ~50 Mb/s for SISO LTE at 20 MHz.
  const double peak = peak_rate_bps(kMaxUlMcs, kPrbs20MHz);
  EXPECT_GT(peak, 45e6);
  EXPECT_LT(peak, 65e6);
}

TEST(McsTables, OutOfRangeThrows) {
  EXPECT_THROW(spectral_efficiency(-1), std::out_of_range);
  EXPECT_THROW(spectral_efficiency(kMaxUlMcs + 1), std::out_of_range);
  EXPECT_THROW(modulation_bits(99), std::out_of_range);
  EXPECT_THROW(tbs_bits(0, 0), std::out_of_range);
  EXPECT_THROW(tbs_bits(0, 101), std::out_of_range);
}

TEST(Cqi, SnrMappingIsMonotoneAndClamped) {
  EXPECT_EQ(snr_to_cqi(-30.0), kMinCqi);
  EXPECT_EQ(snr_to_cqi(50.0), kMaxCqi);
  int prev = 0;
  for (double snr = -10.0; snr <= 30.0; snr += 0.5) {
    const int cqi = snr_to_cqi(snr);
    EXPECT_GE(cqi, prev);
    prev = cqi;
  }
}

TEST(Cqi, GoodChannelReachesTopCqi) {
  EXPECT_EQ(snr_to_cqi(35.0), 15);
  EXPECT_EQ(snr_to_cqi(30.0), 15);
}

TEST(Cqi, RoundTripThroughCenterSnr) {
  for (int cqi = kMinCqi; cqi <= kMaxCqi; ++cqi) {
    EXPECT_EQ(snr_to_cqi(cqi_to_snr_db(cqi)), cqi);
  }
}

TEST(Cqi, MaxMcsIsMonotoneAndReachesTop) {
  int prev = -1;
  for (int cqi = kMinCqi; cqi <= kMaxCqi; ++cqi) {
    const int mcs = cqi_to_max_mcs(cqi);
    EXPECT_GE(mcs, prev);
    EXPECT_GE(mcs, 0);
    EXPECT_LE(mcs, kMaxUlMcs);
    prev = mcs;
  }
  EXPECT_EQ(cqi_to_max_mcs(kMaxCqi), kMaxUlMcs);
}

TEST(Cqi, EffectiveMcsRespectsBothCaps) {
  // Good channel, low policy cap -> policy wins.
  EXPECT_EQ(effective_mcs(15, 4), 4);
  // Poor channel, high policy cap -> channel wins.
  EXPECT_LE(effective_mcs(3, kMaxUlMcs), cqi_to_max_mcs(3));
  EXPECT_EQ(effective_mcs(3, kMaxUlMcs), cqi_to_max_mcs(3));
}

TEST(Cqi, OutOfRangeThrows) {
  EXPECT_THROW(cqi_to_max_mcs(0), std::out_of_range);
  EXPECT_THROW(cqi_to_max_mcs(16), std::out_of_range);
  EXPECT_THROW(cqi_to_snr_db(0), std::out_of_range);
  EXPECT_THROW(effective_mcs(5, -1), std::out_of_range);
  EXPECT_THROW(effective_mcs(5, kMaxUlMcs + 1), std::out_of_range);
}

}  // namespace
}  // namespace edgebol::ran
