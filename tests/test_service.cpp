#include <gtest/gtest.h>

#include <stdexcept>

#include "common/stats.hpp"
#include "service/image_source.hpp"
#include "service/map_model.hpp"

namespace edgebol::service {
namespace {

TEST(ImageSource, SizeMonotoneInResolution) {
  const ImageSource src;
  double prev = 0.0;
  for (double eta : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    const double bits = src.image_bits(eta);
    EXPECT_GT(bits, prev);
    prev = bits;
  }
}

TEST(ImageSource, FullResolutionMatchesCocoAverage) {
  const ImageSource src;
  EXPECT_NEAR(src.image_bits(1.0), src.params().full_res_bits, 1.0);
}

TEST(ImageSource, TinyImagesKeepContainerFloor) {
  const ImageSource src;
  EXPECT_GT(src.image_bits(0.01),
            src.params().full_res_bits * src.params().min_size_frac * 0.99);
}

TEST(ImageSource, PreprocessGrowsWithResolution) {
  const ImageSource src;
  EXPECT_GT(src.preprocess_time_s(1.0), src.preprocess_time_s(0.25));
  EXPECT_GT(src.preprocess_time_s(0.25), 0.0);
}

TEST(ImageSource, SampleUnbiasedAndPositive) {
  const ImageSource src;
  Rng rng(3);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    const double b = src.sample_image_bits(0.5, rng);
    EXPECT_GT(b, 0.0);
    s.add(b);
  }
  EXPECT_NEAR(s.mean(), src.image_bits(0.5), src.image_bits(0.5) * 0.01);
}

TEST(ImageSource, ResponseIsSmallComparedToImages) {
  const ImageSource src;
  EXPECT_LT(src.response_bits(), src.image_bits(0.25));
}

TEST(ImageSource, InvalidInputsThrow) {
  const ImageSource src;
  EXPECT_THROW(src.image_bits(0.0), std::invalid_argument);
  EXPECT_THROW(src.image_bits(1.1), std::invalid_argument);
  EXPECT_THROW(src.preprocess_time_s(-0.5), std::invalid_argument);
  ImageParams bad;
  bad.full_res_bits = 0.0;
  EXPECT_THROW(ImageSource{bad}, std::invalid_argument);
}

TEST(MapModel, MonotoneInResolution) {
  const MapModel m;
  double prev = 0.0;
  for (double eta : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    const double v = m.mean_map(eta);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(MapModel, MatchesFig1Anchors) {
  // Fig. 1 measured roughly: 25% -> ~0.2, 50% -> ~0.45, 100% -> ~0.65.
  const MapModel m;
  EXPECT_NEAR(m.mean_map(0.25), 0.2, 0.07);
  EXPECT_NEAR(m.mean_map(0.50), 0.45, 0.08);
  EXPECT_NEAR(m.mean_map(1.00), 0.65, 0.05);
}

TEST(MapModel, StaysInUnitInterval) {
  const MapModel m;
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double v = m.sample_map(0.05 + 0.9 * rng.uniform(), rng);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(MapModel, SampleUnbiased) {
  const MapModel m;
  Rng rng(7);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(m.sample_map(0.6, rng));
  EXPECT_NEAR(s.mean(), m.mean_map(0.6), 0.005);
  EXPECT_NEAR(s.stddev(), m.params().noise_stddev, 0.005);
}

TEST(MapModel, MinEtaForTargetIsConsistent) {
  const MapModel m;
  const double eta = m.min_eta_for_map(0.5);
  EXPECT_GE(m.mean_map(eta), 0.5);
  if (eta > 0.002) {
    EXPECT_LT(m.mean_map(eta - 0.002), 0.5);
  }
  // Targets beyond the detector's ceiling are unreachable.
  EXPECT_DOUBLE_EQ(m.min_eta_for_map(0.99), 1.0);
}

TEST(MapModel, StringentTargetNeedsHighResolution) {
  // In the paper, rho_min = 0.6 forces near-full resolution (Fig. 1).
  const MapModel m;
  EXPECT_GT(m.min_eta_for_map(0.6), 0.7);
}

TEST(MapModel, InvalidInputsThrow) {
  const MapModel m;
  EXPECT_THROW(m.mean_map(0.0), std::invalid_argument);
  EXPECT_THROW(m.mean_map(1.2), std::invalid_argument);
  MapParams bad;
  bad.max_map = 0.0;
  EXPECT_THROW(MapModel{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace edgebol::service
