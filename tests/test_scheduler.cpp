#include "ran/scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace edgebol::ran {
namespace {

constexpr double kBig = 1e12;  // effectively infinite backlog

TEST(Scheduler, AirtimePolicyIsRespected) {
  for (double airtime : {0.1, 0.25, 0.5, 0.8, 1.0}) {
    const auto rep = simulate_round_robin({{20, kBig}}, {airtime, 20}, 1000);
    EXPECT_LE(rep.slice_subframe_fraction, airtime + 1e-9)
        << "airtime " << airtime;
    EXPECT_NEAR(rep.slice_subframe_fraction, airtime, 0.01);
  }
}

TEST(Scheduler, FullAirtimeUsesEverySubframe) {
  const auto rep = simulate_round_robin({{10, kBig}}, {1.0, 20}, 500);
  EXPECT_DOUBLE_EQ(rep.slice_subframe_fraction, 1.0);
}

TEST(Scheduler, RoundRobinIsFairForEqualUsers) {
  const auto rep = simulate_round_robin({{15, kBig}, {15, kBig}, {15, kBig}},
                                        {1.0, 20}, 900);
  EXPECT_NEAR(rep.served_bits[0], rep.served_bits[1],
              tbs_bits(15, kPrbs20MHz) + 1.0);
  EXPECT_NEAR(rep.served_bits[1], rep.served_bits[2],
              tbs_bits(15, kPrbs20MHz) + 1.0);
}

TEST(Scheduler, EqualSubframesEvenForUnequalMcs) {
  // Round-robin shares *subframes*, not bits: a user with lower MCS gets
  // the same airtime but fewer bits.
  const auto rep =
      simulate_round_robin({{20, kBig}, {5, kBig}}, {1.0, 20}, 1000);
  EXPECT_GT(rep.served_bits[0], rep.served_bits[1]);
  EXPECT_NEAR(rep.served_bits[0] / tbs_bits(20, kPrbs20MHz),
              rep.served_bits[1] / tbs_bits(5, kPrbs20MHz), 1.0);
}

TEST(Scheduler, McsPolicyCapsPerUserMcs) {
  const auto capped = simulate_round_robin({{20, kBig}}, {1.0, 8}, 100);
  EXPECT_NEAR(capped.mean_scheduled_mcs, 8.0, 1e-9);
  EXPECT_NEAR(capped.total_served_bits, 100 * tbs_bits(8, kPrbs20MHz), 1e-6);
}

TEST(Scheduler, ServedNeverExceedsBacklog) {
  const double backlog = 3.5 * tbs_bits(20, kPrbs20MHz);
  const auto rep = simulate_round_robin({{20, backlog}}, {1.0, 20}, 100);
  EXPECT_NEAR(rep.served_bits[0], backlog, 1e-9);
}

TEST(Scheduler, EmptyBacklogGrantsNothing) {
  const auto rep = simulate_round_robin({{20, 0.0}}, {1.0, 20}, 100);
  EXPECT_DOUBLE_EQ(rep.slice_subframe_fraction, 0.0);
  EXPECT_DOUBLE_EQ(rep.total_served_bits, 0.0);
}

TEST(Scheduler, SkipsDrainedUsers) {
  const double small = tbs_bits(20, kPrbs20MHz);  // one subframe's worth
  const auto rep =
      simulate_round_robin({{20, small}, {20, kBig}}, {1.0, 20}, 100);
  EXPECT_NEAR(rep.served_bits[0], small, 1e-9);
  EXPECT_NEAR(rep.served_bits[1], 99 * small, 1e-6);
}

TEST(Scheduler, ThroughputMatchesFluidModel) {
  const auto rep = simulate_round_robin({{18, kBig}, {18, kBig}},
                                        {0.6, 20}, 2000);
  const double per_user_rate =
      rep.served_bits[0] / 2.0;  // bits per second over a 2 s window
  const double fluid = fair_share_rate_bps(18, 0.6, 2);
  EXPECT_NEAR(per_user_rate, fluid, fluid * 0.03);
}

TEST(PrbFairScheduler, AirtimeRespected) {
  const auto rep =
      simulate_prb_fair({{20, kBig}, {20, kBig}}, {0.4, 20}, 1000);
  EXPECT_NEAR(rep.slice_subframe_fraction, 0.4, 0.01);
}

TEST(PrbFairScheduler, EqualUsersSplitEvenly) {
  const auto rep = simulate_prb_fair({{16, kBig}, {16, kBig}}, {1.0, 20},
                                     1000);
  EXPECT_NEAR(rep.served_bits[0], rep.served_bits[1],
              0.02 * rep.served_bits[0]);
}

TEST(PrbFairScheduler, FluidThroughputMatchesTdmRoundRobin) {
  // In the long run both schedulers give a user the same goodput.
  const auto tdm =
      simulate_round_robin({{18, kBig}, {18, kBig}}, {0.8, 20}, 4000);
  const auto prb = simulate_prb_fair({{18, kBig}, {18, kBig}}, {0.8, 20},
                                     4000);
  EXPECT_NEAR(prb.served_bits[0], tdm.served_bits[0],
              0.03 * tdm.served_bits[0]);
}

TEST(PrbFairScheduler, MixedMcsUsersGetEqualPrbsNotEqualBits) {
  const auto rep =
      simulate_prb_fair({{20, kBig}, {5, kBig}}, {1.0, 20}, 1000);
  EXPECT_NEAR(rep.served_bits[0] / rep.served_bits[1],
              spectral_efficiency(20) / spectral_efficiency(5), 0.05);
}

TEST(PrbFairScheduler, DrainedUserFreesPrbsForOthers) {
  const double small = 50.0 * tbs_bits(20, kPrbs20MHz / 2);
  const auto rep = simulate_prb_fair({{20, small}, {20, kBig}}, {1.0, 20},
                                     1000);
  EXPECT_NEAR(rep.served_bits[0], small, 1e-6);
  // After user 0 drains (~100 subframes), user 1 gets all 100 PRBs.
  EXPECT_GT(rep.served_bits[1], 0.8 * 1000 * tbs_bits(20, kPrbs20MHz) / 2);
}

TEST(PrbFairScheduler, MoreUsersThanPrbsStillServes) {
  std::vector<UlUserState> many(150, {10, kBig});
  const auto rep = simulate_prb_fair(std::move(many), {1.0, 20}, 10,
                                     /*nprb=*/100);
  // 100 PRBs across 150 users: some get 1 PRB, some 0, every subframe used.
  EXPECT_DOUBLE_EQ(rep.slice_subframe_fraction, 1.0);
  EXPECT_GT(rep.total_served_bits, 0.0);
}

TEST(PrbFairScheduler, InvalidInputsThrow) {
  EXPECT_THROW(simulate_prb_fair({{20, 1.0}}, {1.5, 20}, 100),
               std::invalid_argument);
  EXPECT_THROW(simulate_prb_fair({{20, 1.0}}, {0.5, 99}, 100),
               std::invalid_argument);
  EXPECT_THROW(simulate_prb_fair({{20, 1.0}}, {0.5, 20}, 0),
               std::invalid_argument);
}

TEST(Scheduler, InvalidInputsThrow) {
  EXPECT_THROW(simulate_round_robin({{20, 1.0}}, {1.5, 20}, 100),
               std::invalid_argument);
  EXPECT_THROW(simulate_round_robin({{20, 1.0}}, {0.5, 99}, 100),
               std::invalid_argument);
  EXPECT_THROW(simulate_round_robin({{20, 1.0}}, {0.5, 20}, 0),
               std::invalid_argument);
  EXPECT_THROW(fair_share_rate_bps(20, 0.5, 0), std::invalid_argument);
  EXPECT_THROW(fair_share_rate_bps(20, 1.5, 1), std::invalid_argument);
}

TEST(Scheduler, FairShareScalesWithAirtimeAndUsers) {
  const double solo = fair_share_rate_bps(20, 1.0, 1);
  EXPECT_NEAR(fair_share_rate_bps(20, 0.5, 1), solo / 2.0, 1e-6);
  EXPECT_NEAR(fair_share_rate_bps(20, 1.0, 4), solo / 4.0, 1e-6);
}

}  // namespace
}  // namespace edgebol::ran
