#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace edgebol {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(11);
  double s = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += r.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng r(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform_index(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(Rng, UniformIndexSingleton) {
  Rng r(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_index(1), 0u);
}

TEST(Rng, NormalMoments) {
  Rng r(17);
  double s = 0.0, s2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    s += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s / n, 0.0, 0.02);
  EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, NormalMeanStddevScaling) {
  Rng r(19);
  double s = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) s += r.normal(10.0, 2.0);
  EXPECT_NEAR(s / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng parent(29);
  Rng a = parent.split();
  Rng b = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 5);
}

TEST(Rng, DeriveStreamIsPureFunctionOfRootAndId) {
  Rng a = Rng::derive_stream(123, 7);
  Rng b = Rng::derive_stream(123, 7);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DeriveStreamInvariantToOtherDerivations) {
  // Deriving streams for other entities (in any order) must not perturb
  // entity 7's stream — the per-cell fleet contract.
  Rng alone = Rng::derive_stream(99, 7);
  Rng ignored1 = Rng::derive_stream(99, 3);
  Rng ignored2 = Rng::derive_stream(99, 12);
  Rng crowded = Rng::derive_stream(99, 7);
  (void)ignored1();
  (void)ignored2();
  for (int i = 0; i < 200; ++i) EXPECT_EQ(alone(), crowded());
}

TEST(Rng, DeriveStreamDistinctIdsDiverge) {
  Rng a = Rng::derive_stream(5, 0);
  Rng b = Rng::derive_stream(5, 1);
  Rng c = Rng::derive_stream(6, 0);
  int ab = 0, ac = 0;
  for (int i = 0; i < 100; ++i) {
    const auto x = a();
    ab += (x == b());
    ac += (x == c());
  }
  EXPECT_LT(ab, 5);
  EXPECT_LT(ac, 5);
}

TEST(Rng, DeriveStreamConsecutiveIdsUncorrelatedMeans) {
  // Nearby ids must not share low-bit structure: each stream's uniform mean
  // should be ~0.5 independently.
  for (std::uint64_t id = 0; id < 8; ++id) {
    Rng r = Rng::derive_stream(1, id);
    double s = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) s += r.uniform();
    EXPECT_NEAR(s / n, 0.5, 0.02) << "id " << id;
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng r(37);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  const std::vector<int> orig = v;
  r.shuffle(v);
  EXPECT_NE(v, orig);
}

}  // namespace
}  // namespace edgebol
