#include "core/edgebol.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "baselines/oracle.hpp"
#include "common/stats.hpp"
#include "env/scenarios.hpp"

namespace edgebol::core {
namespace {

// A coarser grid keeps the unit tests fast; algorithm behaviour is the same.
env::ControlGrid small_grid() {
  env::GridSpec spec;
  spec.levels_per_dim = 6;
  return env::ControlGrid(spec);
}

struct RunResult {
  std::vector<double> costs;
  std::vector<double> delays;
  std::vector<double> maps;
  std::vector<std::size_t> safe_sizes;
};

RunResult run(EdgeBol& agent, env::Testbed& tb, int periods) {
  RunResult r;
  for (int t = 0; t < periods; ++t) {
    const env::Context c = tb.context();
    const Decision d = agent.select(c);
    const env::Measurement m = tb.step(d.policy);
    agent.update(c, d.policy_index, m);
    r.costs.push_back(agent.weights().cost(m.server_power_w, m.bs_power_w));
    r.delays.push_back(m.delay_s);
    r.maps.push_back(m.map);
    r.safe_sizes.push_back(d.safe_set_size);
  }
  return r;
}

TEST(EdgeBol, FirstDecisionComesFromS0) {
  EdgeBolConfig cfg;
  EdgeBol agent(small_grid(), cfg);
  env::Testbed tb = env::make_static_testbed(35.0);
  const Decision d = agent.select(tb.context());
  EXPECT_EQ(d.policy_index, agent.grid().max_performance_index());
  EXPECT_EQ(d.safe_set_size, 1u);
  EXPECT_TRUE(d.fell_back_to_s0);
}

TEST(EdgeBol, SafeSetExpandsWithObservations) {
  EdgeBolConfig cfg;
  EdgeBol agent(small_grid(), cfg);
  env::Testbed tb = env::make_static_testbed(35.0);
  const RunResult r = run(agent, tb, 40);
  EXPECT_GT(r.safe_sizes.back(), 5u);
  EXPECT_GE(r.safe_sizes.back(), r.safe_sizes.front());
}

TEST(EdgeBol, CostConvergesNearOracle) {
  EdgeBolConfig cfg;
  cfg.weights = {1.0, 8.0};
  cfg.constraints = {0.4, 0.5};
  EdgeBol agent(small_grid(), cfg);
  env::Testbed tb = env::make_static_testbed(35.0);
  const RunResult r = run(agent, tb, 120);

  const auto oracle = baselines::exhaustive_oracle(tb, agent.grid(),
                                                   cfg.weights,
                                                   cfg.constraints);
  ASSERT_TRUE(oracle.feasible);
  std::vector<double> tail(r.costs.end() - 30, r.costs.end());
  const double converged = mean_of(tail);
  // The paper reports a ~2% optimality gap; allow 12% on the noisy run.
  EXPECT_LT(converged, oracle.cost * 1.12);
  // And convergence means improving on the initial S0 cost.
  std::vector<double> head(r.costs.begin(), r.costs.begin() + 5);
  EXPECT_LT(converged, mean_of(head));
}

TEST(EdgeBol, ConstraintsHoldWithHighProbability) {
  EdgeBolConfig cfg;
  cfg.constraints = {0.4, 0.5};
  EdgeBol agent(small_grid(), cfg);
  env::Testbed tb = env::make_static_testbed(35.0);
  const RunResult r = run(agent, tb, 120);
  int violations = 0;
  for (std::size_t t = 10; t < r.delays.size(); ++t) {
    // Small slack for observation noise, as in the paper's "with very high
    // probability" (they report 0.98).
    if (r.delays[t] > cfg.constraints.d_max_s * 1.05 ||
        r.maps[t] < cfg.constraints.map_min - 0.03)
      ++violations;
  }
  EXPECT_LE(violations, 6);
}

TEST(EdgeBol, InfeasibleConstraintsFallBackToS0) {
  EdgeBolConfig cfg;
  cfg.constraints = {0.05, 0.74};  // unattainable: min delay >> 50 ms
  EdgeBol agent(small_grid(), cfg);
  env::Testbed tb = env::make_static_testbed(35.0);
  for (int t = 0; t < 25; ++t) {
    const env::Context c = tb.context();
    const Decision d = agent.select(c);
    EXPECT_TRUE(d.fell_back_to_s0) << "period " << t;
    EXPECT_EQ(d.policy_index, agent.grid().max_performance_index());
    agent.update(c, d.policy_index, tb.step(d.policy));
  }
}

TEST(EdgeBol, ConstraintChangeTakesEffectImmediately) {
  EdgeBolConfig cfg;
  cfg.constraints = {0.5, 0.4};
  EdgeBol agent(small_grid(), cfg);
  env::Testbed tb = env::make_static_testbed(35.0);
  run(agent, tb, 60);

  // Tighten the SLA: the safe set recomputed from the same GPs must shrink.
  const env::Context c = tb.context();
  const std::size_t before = agent.select(c).safe_set_size;
  agent.set_constraints({0.3, 0.6});
  const std::size_t after = agent.select(c).safe_set_size;
  EXPECT_LT(after, before);
  EXPECT_EQ(agent.constraints().d_max_s, 0.3);

  // And the policies selected under the tight SLA respect it.
  RunningStats delays;
  for (int t = 0; t < 25; ++t) {
    const env::Context ctx = tb.context();
    const Decision d = agent.select(ctx);
    const env::Measurement m = tb.step(d.policy);
    agent.update(ctx, d.policy_index, m);
    delays.add(m.delay_s);
  }
  EXPECT_LT(delays.mean(), 0.35);
}

TEST(EdgeBol, PriorObservationsWarmStart) {
  EdgeBolConfig cfg;
  EdgeBol cold(small_grid(), cfg);
  EdgeBol warm(small_grid(), cfg);
  env::Testbed tb = env::make_static_testbed(35.0);

  // Pre-production phase: feed labelled observations of random policies.
  env::Testbed pre = env::make_static_testbed(35.0);
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    const auto& p = warm.grid().policy(rng.uniform_index(warm.grid().size()));
    const env::Context c = pre.context();
    warm.add_prior_observation(c, p, pre.step(p));
  }
  EXPECT_EQ(warm.num_observations(), 30u);
  EXPECT_GT(warm.select(tb.context()).safe_set_size,
            cold.select(tb.context()).safe_set_size);
}

TEST(EdgeBol, CostScaleAutoTracksWeights) {
  EdgeBolConfig cheap, pricey;
  cheap.weights = {1.0, 1.0};
  pricey.weights = {1.0, 64.0};
  EXPECT_GT(EdgeBol(small_grid(), pricey).cost_scale(),
            EdgeBol(small_grid(), cheap).cost_scale());
  EdgeBolConfig fixed;
  fixed.cost_scale = 123.0;
  EXPECT_DOUBLE_EQ(EdgeBol(small_grid(), fixed).cost_scale(), 123.0);
}

TEST(EdgeBol, SaveLoadRoundTripPreservesDecisions) {
  EdgeBolConfig cfg;
  cfg.weights = {1.0, 8.0};
  cfg.constraints = {0.4, 0.5};
  EdgeBol original(small_grid(), cfg);
  env::Testbed tb = env::make_static_testbed(35.0);
  run(original, tb, 50);

  std::stringstream buf;
  original.save_observations(buf);

  EdgeBol restored(small_grid(), cfg);
  restored.load_observations(buf);
  EXPECT_EQ(restored.num_observations(), original.num_observations());

  const env::Context c = tb.context();
  const Decision a = original.select(c);
  const Decision b = restored.select(c);
  EXPECT_EQ(a.policy_index, b.policy_index);
  EXPECT_EQ(a.safe_set_size, b.safe_set_size);
}

TEST(EdgeBol, LoadRejectsMalformedData) {
  EdgeBol agent(small_grid(), EdgeBolConfig{});
  std::stringstream bad1("not-a-header v1\n");
  EXPECT_THROW(agent.load_observations(bad1), std::runtime_error);
  std::stringstream bad2("edgebol-observations v1\ndims 3\ncount 0\n");
  EXPECT_THROW(agent.load_observations(bad2), std::runtime_error);
  std::stringstream bad3(
      "edgebol-observations v1\ndims 7\ncount 2\n0 0 0 0 0 0 0 1 1 1\n");
  EXPECT_THROW(agent.load_observations(bad3), std::runtime_error);
}

TEST(EdgeBol, NoveltyThresholdBoundsDataGrowth) {
  EdgeBolConfig plain, filtered;
  filtered.novelty_threshold = 2.0;
  EdgeBol a(small_grid(), plain);
  EdgeBol b(small_grid(), filtered);
  env::Testbed tb_a = env::make_static_testbed(35.0);
  env::Testbed tb_b = env::make_static_testbed(35.0);
  const int periods = 120;
  run(a, tb_a, periods);
  const RunResult rb = run(b, tb_b, periods);
  EXPECT_EQ(a.num_observations(), static_cast<std::size_t>(periods));
  // Once converged, the incumbent's repeated samples are filtered out.
  EXPECT_LT(b.num_observations(), static_cast<std::size_t>(periods));
  EXPECT_GT(b.num_observations(), 5u);
  // And the filtered agent still converged to a sensible cost.
  std::vector<double> tail(rb.costs.end() - 20, rb.costs.end());
  std::vector<double> head(rb.costs.begin(), rb.costs.begin() + 5);
  EXPECT_LT(mean_of(tail), mean_of(head));
}

TEST(EdgeBol, RunsWithRbfSurrogates) {
  // The kernel family is configurable (used by bench_ablation_kernel).
  EdgeBolConfig cfg;
  cfg.cost_hp = default_cost_hyperparams();
  cfg.delay_hp = default_delay_hyperparams();
  cfg.map_hp = default_map_hyperparams();
  cfg.cost_hp.family = gp::KernelFamily::kRbf;
  cfg.delay_hp.family = gp::KernelFamily::kRbf;
  cfg.map_hp.family = gp::KernelFamily::kRbf;
  EdgeBol agent(small_grid(), cfg);
  env::Testbed tb = env::make_static_testbed(35.0);
  const RunResult r = run(agent, tb, 60);
  // Still learns and still respects constraints most of the time.
  std::vector<double> head(r.costs.begin(), r.costs.begin() + 5);
  std::vector<double> tail(r.costs.end() - 15, r.costs.end());
  EXPECT_LT(mean_of(tail), mean_of(head) + 5.0);
  EXPECT_GT(r.safe_sizes.back(), 1u);
}

TEST(EdgeBol, Validation) {
  EdgeBolConfig cfg;
  cfg.beta_sqrt = -1.0;
  EXPECT_THROW(EdgeBol(small_grid(), cfg), std::invalid_argument);
  cfg = EdgeBolConfig{};
  cfg.initial_safe_set = {1u << 30};
  EXPECT_THROW(EdgeBol(small_grid(), cfg), std::invalid_argument);
  cfg = EdgeBolConfig{};
  cfg.cost_hp.lengthscales = {1.0};  // wrong dimensionality
  EXPECT_THROW(EdgeBol(small_grid(), cfg), std::invalid_argument);

  EdgeBol agent(small_grid(), EdgeBolConfig{});
  env::Testbed tb = env::make_static_testbed(35.0);
  EXPECT_THROW(agent.update(tb.context(), agent.grid().size(), {}),
               std::invalid_argument);
  EXPECT_THROW(agent.set_constraints({-1.0, 0.5}), std::invalid_argument);
}

TEST(EdgeBol, ValidationOfBudgetAndThreads) {
  // num_threads counts the calling thread; 0 is a configuration error.
  EdgeBolConfig cfg;
  cfg.num_threads = 0;
  EXPECT_THROW(EdgeBol(small_grid(), cfg), std::invalid_argument);

  // A budget below |S0| could not even hold the safe seed.
  cfg = EdgeBolConfig{};
  cfg.initial_safe_set = {0, 1, 2};
  cfg.gp_budget = 2;
  EXPECT_THROW(EdgeBol(small_grid(), cfg), std::invalid_argument);

  // Budget == |S0| and budget == 0 (unbounded) are both fine.
  cfg.gp_budget = 3;
  EXPECT_NO_THROW(EdgeBol(small_grid(), cfg));
  cfg.gp_budget = 0;
  EXPECT_NO_THROW(EdgeBol(small_grid(), cfg));
}

TEST(EdgeBol, BudgetBoundsObservationsInTheLoop) {
  EdgeBolConfig cfg;
  cfg.weights = {1.0, 8.0};
  cfg.constraints = {0.4, 0.5};
  cfg.gp_budget = 10;
  EdgeBol agent(small_grid(), cfg);
  env::Testbed tb = env::make_static_testbed(35.0);
  for (int t = 0; t < 30; ++t) {
    const env::Context c = tb.context();
    const Decision d = agent.select(c);
    agent.update(c, d.policy_index, tb.step(d.policy));
    EXPECT_LE(agent.num_observations(), cfg.gp_budget);
  }
  EXPECT_EQ(agent.num_observations(), cfg.gp_budget);
}

TEST(EdgeBol, SafeOptAcquisitionStaysSafeButConvergesSlower) {
  env::Testbed tb_lcb = env::make_static_testbed(35.0);
  env::Testbed tb_so = env::make_static_testbed(35.0);

  core::EdgeBolConfig cfg;
  cfg.weights = {1.0, 8.0};
  cfg.constraints = {0.4, 0.5};
  EdgeBol lcb(small_grid(), cfg);
  cfg.acquisition = AcquisitionKind::kSafeOpt;
  EdgeBol safeopt(small_grid(), cfg);

  const RunResult r_lcb = run(lcb, tb_lcb, 100);
  const RunResult r_so = run(safeopt, tb_so, 100);

  // Both respect the constraints...
  int so_viol = 0;
  for (std::size_t t = 10; t < r_so.delays.size(); ++t) {
    so_viol += (r_so.delays[t] > 0.4 * 1.1 || r_so.maps[t] < 0.5 - 0.04);
  }
  EXPECT_LE(so_viol, 8);
  // ...but SafeOpt's width-directed sampling leaves its average converged
  // cost above the LCB's (the §5 observation).
  std::vector<double> lcb_tail(r_lcb.costs.end() - 30, r_lcb.costs.end());
  std::vector<double> so_tail(r_so.costs.end() - 30, r_so.costs.end());
  EXPECT_LT(mean_of(lcb_tail), mean_of(so_tail) + 5.0);
}

TEST(EdgeBol, KnowledgeTransfersAcrossContexts) {
  // Train at one SNR, then evaluate the safe set at a *similar* unseen SNR:
  // the GP correlations should carry knowledge over (§6.5).
  EdgeBolConfig cfg;
  EdgeBol agent(small_grid(), cfg);
  env::Testbed train = env::make_static_testbed(33.0);
  run(agent, train, 50);
  env::Testbed eval = env::make_static_testbed(35.0);
  EXPECT_GT(agent.select(eval.context()).safe_set_size, 3u);
}

}  // namespace
}  // namespace edgebol::core
