#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"

namespace edgebol::nn {
namespace {

TEST(Activations, ValuesAndGradients) {
  EXPECT_DOUBLE_EQ(activate(Activation::kIdentity, -2.0), -2.0);
  EXPECT_DOUBLE_EQ(activate(Activation::kRelu, -2.0), 0.0);
  EXPECT_DOUBLE_EQ(activate(Activation::kRelu, 2.0), 2.0);
  EXPECT_NEAR(activate(Activation::kTanh, 0.5), std::tanh(0.5), 1e-12);
  EXPECT_NEAR(activate(Activation::kSigmoid, 0.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(activate_grad(Activation::kIdentity, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(activate_grad(Activation::kRelu, -1.0), 0.0);
  EXPECT_NEAR(activate_grad(Activation::kSigmoid, 0.0), 0.25, 1e-12);
}

TEST(Mlp, ShapesAndParameterCount) {
  Rng rng(1);
  Mlp net({3, 5, 2}, {Activation::kRelu, Activation::kIdentity}, rng);
  EXPECT_EQ(net.input_dims(), 3u);
  EXPECT_EQ(net.output_dims(), 2u);
  EXPECT_EQ(net.num_parameters(), 3u * 5u + 5u + 5u * 2u + 2u);
  EXPECT_EQ(net.forward({1.0, 2.0, 3.0}).size(), 2u);
}

TEST(Mlp, SigmoidOutputInUnitBox) {
  Rng rng(2);
  Mlp net({2, 8, 4}, {Activation::kRelu, Activation::kSigmoid}, rng);
  const auto y = net.forward({10.0, -10.0});
  for (double v : y) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

// Finite-difference gradient check — the critical correctness test for the
// manual backprop.
TEST(Mlp, ParameterGradientsMatchFiniteDifferences) {
  Rng rng(3);
  Mlp net({2, 4, 3, 1}, {Activation::kTanh, Activation::kRelu,
                         Activation::kIdentity},
          rng);
  const linalg::Vector x{0.3, -0.7};

  net.zero_grad();
  const double y0 = net.forward(x)[0];
  (void)y0;
  net.backward({1.0});  // dL/dy = 1 -> grads are dy/dparam

  const double eps = 1e-6;
  for (Mlp::Block block : net.blocks()) {
    for (std::size_t i = 0; i < block.values->size(); i += 3) {
      const double orig = (*block.values)[i];
      (*block.values)[i] = orig + eps;
      const double yp = net.forward(x)[0];
      (*block.values)[i] = orig - eps;
      const double ym = net.forward(x)[0];
      (*block.values)[i] = orig;
      const double fd = (yp - ym) / (2.0 * eps);
      EXPECT_NEAR((*block.grads)[i], fd, 1e-5);
    }
  }
}

TEST(Mlp, InputGradientsMatchFiniteDifferences) {
  Rng rng(4);
  Mlp net({3, 6, 1}, {Activation::kTanh, Activation::kIdentity}, rng);
  const linalg::Vector x{0.1, 0.5, -0.2};
  net.zero_grad();
  net.forward(x);
  const linalg::Vector din = net.backward({1.0});

  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    linalg::Vector xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double fd = (net.forward(xp)[0] - net.forward(xm)[0]) / (2.0 * eps);
    EXPECT_NEAR(din[i], fd, 1e-5);
  }
}

TEST(Mlp, GradientsAccumulateAcrossBackwardCalls) {
  Rng rng(5);
  Mlp net({1, 1}, {Activation::kIdentity}, rng);
  net.zero_grad();
  net.forward({1.0});
  net.backward({1.0});
  const double g1 = (*net.blocks()[0].grads)[0];
  net.forward({1.0});
  net.backward({1.0});
  EXPECT_NEAR((*net.blocks()[0].grads)[0], 2.0 * g1, 1e-12);
  net.zero_grad();
  EXPECT_DOUBLE_EQ((*net.blocks()[0].grads)[0], 0.0);
}

TEST(Mlp, CopyParameters) {
  Rng rng(6);
  Mlp a({2, 3, 1}, {Activation::kTanh, Activation::kIdentity}, rng);
  Mlp b({2, 3, 1}, {Activation::kTanh, Activation::kIdentity}, rng);
  b.copy_parameters_from(a);
  EXPECT_DOUBLE_EQ(a.forward({0.5, -0.5})[0], b.forward({0.5, -0.5})[0]);
  Mlp c({2, 4, 1}, {Activation::kTanh, Activation::kIdentity}, rng);
  EXPECT_THROW(c.copy_parameters_from(a), std::invalid_argument);
}

TEST(Mlp, Validation) {
  Rng rng(7);
  EXPECT_THROW(Mlp({3}, {}, rng), std::invalid_argument);
  EXPECT_THROW(Mlp({3, 2}, {}, rng), std::invalid_argument);
  EXPECT_THROW(Mlp({3, 0}, {Activation::kRelu}, rng), std::invalid_argument);
  Mlp net({2, 1}, {Activation::kIdentity}, rng);
  EXPECT_THROW(net.forward({1.0}), std::invalid_argument);
  EXPECT_THROW(net.backward({1.0}), std::logic_error);  // no forward yet
}

TEST(Adam, MinimizesQuadratic) {
  // Fit y = 2x - 1 with a linear "network" via MSE.
  Rng rng(8);
  Mlp net({1, 1}, {Activation::kIdentity}, rng);
  Adam opt(net, {0.05, 0.9, 0.999, 1e-8});
  for (int it = 0; it < 500; ++it) {
    net.zero_grad();
    double loss = 0.0;
    for (double x : {-1.0, 0.0, 1.0, 2.0}) {
      const double y = net.forward({x})[0];
      const double target = 2.0 * x - 1.0;
      loss += (y - target) * (y - target);
      net.backward({2.0 * (y - target)});
    }
    opt.step(4.0);
    if (loss < 1e-8) break;
  }
  EXPECT_NEAR(net.forward({3.0})[0], 5.0, 0.05);
  EXPECT_GT(opt.iterations(), 10);
}

TEST(Adam, TrainsSmallNonlinearRegression) {
  Rng rng(9);
  Mlp net({1, 16, 1}, {Activation::kTanh, Activation::kIdentity}, rng);
  Adam opt(net, {0.01, 0.9, 0.999, 1e-8});
  auto target = [](double x) { return std::sin(3.0 * x); };
  for (int it = 0; it < 2000; ++it) {
    net.zero_grad();
    for (int i = 0; i < 16; ++i) {
      const double x = rng.uniform(-1.0, 1.0);
      const double y = net.forward({x})[0];
      net.backward({2.0 * (y - target(x))});
    }
    opt.step(16.0);
  }
  double mse = 0.0;
  for (int i = 0; i <= 20; ++i) {
    const double x = -1.0 + 0.1 * i;
    const double e = net.forward({x})[0] - target(x);
    mse += e * e;
  }
  EXPECT_LT(mse / 21.0, 0.02);
}

TEST(Adam, Validation) {
  Rng rng(10);
  Mlp net({1, 1}, {Activation::kIdentity}, rng);
  EXPECT_THROW(Adam(net, {0.0, 0.9, 0.999, 1e-8}), std::invalid_argument);
  EXPECT_THROW(Adam(net, {0.1, 1.0, 0.999, 1e-8}), std::invalid_argument);
  Adam opt(net);
  EXPECT_THROW(opt.step(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace edgebol::nn
