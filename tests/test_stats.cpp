#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace edgebol {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MeanAndVarianceMatchDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), 6.2, 1e-12);
  EXPECT_NEAR(s.variance(), variance_of(xs), 1e-12);
  EXPECT_NEAR(s.sample_variance(), variance_of(xs) * 5.0 / 4.0, 1e-12);
}

TEST(RunningStats, MinMaxSum) {
  RunningStats s;
  s.add(3.0);
  s.add(-1.0);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  EXPECT_NEAR(s.sum(), 9.0, 1e-12);
}

TEST(RunningStats, MergeEqualsJointAccumulation) {
  RunningStats a, b, joint;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    joint.add(i);
  }
  for (int i = 50; i < 70; ++i) {
    b.add(i * 0.5);
    joint.add(i * 0.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), joint.count());
  EXPECT_NEAR(a.mean(), joint.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), joint.variance(), 1e-9);
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Percentile, InterpolatesBetweenValues) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 50.0), 5.0);
}

TEST(Percentile, Endpoints) {
  const std::vector<double> xs{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 9.0);
}

TEST(Percentile, ThrowsOnEmptyOrBadP) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto v = linspace(0.0, 1.0, 11);
  ASSERT_EQ(v.size(), 11u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_NEAR(v[1] - v[0], 0.1, 1e-12);
}

TEST(Linspace, SinglePoint) {
  const auto v = linspace(3.0, 9.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
}

TEST(Linspace, ThrowsOnZero) {
  EXPECT_THROW(linspace(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Helpers, Clamp01) {
  EXPECT_DOUBLE_EQ(clamp01(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(clamp01(0.5), 0.5);
  EXPECT_DOUBLE_EQ(clamp01(1.5), 1.0);
}

TEST(Helpers, MeanVarianceOfVector) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(variance_of({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(variance_of({2.0, 4.0}), 1.0);
}

}  // namespace
}  // namespace edgebol
