// The batched GP engine's two core guarantees:
//
//  1. The tracked-candidate cache is EXACT — after any interleaving of
//     add() and context switches (re-tracking), tracked_prediction(j)
//     matches a fresh predict() at the same point to 1e-9.
//
//  2. Parallelism never changes results — EdgeBol decision trajectories and
//     fit_hyperparameters outputs are bit-identical for any thread count
//     (the block partition depends only on the problem size, and each
//     column's floating-point op sequence is independent of the blocking).

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/edgebol.hpp"
#include "env/scenarios.hpp"
#include "gp/gp_regressor.hpp"
#include "gp/hyperopt.hpp"
#include "gp/kernel.hpp"

namespace edgebol {
namespace {

using linalg::Vector;

std::unique_ptr<gp::Kernel> make_kernel() {
  return std::make_unique<gp::Matern32Kernel>(Vector(7, 1.1), 0.9);
}

std::vector<Vector> draw_points(std::size_t n, Rng& rng) {
  std::vector<Vector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector z(7);
    for (double& v : z) v = rng.uniform();
    out.push_back(std::move(z));
  }
  return out;
}

std::shared_ptr<const linalg::Matrix> pack(const std::vector<Vector>& pts) {
  linalg::Matrix m;
  m.reserve_rows(pts.size(), 7);
  for (const Vector& p : pts) m.append_row(p);
  return std::make_shared<const linalg::Matrix>(std::move(m));
}

// ---------------------------------------------------------------------------
// Property: tracked cache == fresh predict, through adds and re-tracks.
// ---------------------------------------------------------------------------

void check_tracked_matches_fresh(const gp::GpRegressor& gp,
                                 const std::vector<Vector>& cands) {
  for (std::size_t j = 0; j < cands.size(); ++j) {
    const gp::Prediction fresh = gp.predict(cands[j]);
    EXPECT_NEAR(gp.tracked_mean(j), fresh.mean, 1e-9);
    EXPECT_NEAR(gp.tracked_variance(j), fresh.variance, 1e-9);
  }
}

void run_interleaved_property(std::shared_ptr<common::ThreadPool> pool) {
  Rng rng(1234);
  gp::GpRegressor gp(make_kernel(), 2e-3);
  gp.set_thread_pool(pool);

  // Phases of the interleave: grow, switch context (new candidate set),
  // grow again, switch back, grow once more. Checked after every phase.
  const auto cands_a = draw_points(60, rng);
  const auto cands_b = draw_points(45, rng);
  const auto mat_a = pack(cands_a);
  const auto mat_b = pack(cands_b);
  const auto zs = draw_points(36, rng);
  Rng yrng(77);
  std::size_t added = 0;
  auto grow = [&](std::size_t count) {
    for (std::size_t i = 0; i < count; ++i, ++added) {
      gp.add(zs[added], yrng.normal());
    }
  };

  grow(8);
  gp.track_candidates(mat_a);
  check_tracked_matches_fresh(gp, cands_a);

  grow(10);
  check_tracked_matches_fresh(gp, cands_a);

  gp.track_candidates(mat_b);  // context switch
  check_tracked_matches_fresh(gp, cands_b);

  grow(12);
  check_tracked_matches_fresh(gp, cands_b);

  gp.track_candidates(mat_a);  // switch back
  grow(6);
  check_tracked_matches_fresh(gp, cands_a);
}

TEST(GpParallel, TrackedMatchesFreshPredictSerial) {
  run_interleaved_property(nullptr);
}

TEST(GpParallel, TrackedMatchesFreshPredictPooled) {
  run_interleaved_property(std::make_shared<common::ThreadPool>(4));
}

// The cache itself must be bit-identical between the serial and pooled
// engines, not merely close: same partition, same per-column op sequence.
TEST(GpParallel, TrackedCacheBitIdenticalAcrossPools) {
  std::vector<std::size_t> counts = {1, 2, 8};
  std::vector<std::vector<double>> means, vars;
  for (std::size_t threads : counts) {
    Rng rng(55);
    gp::GpRegressor gp(make_kernel(), 1e-3);
    if (threads > 1) {
      gp.set_thread_pool(std::make_shared<common::ThreadPool>(threads));
    }
    const auto cands = draw_points(70, rng);
    const auto zs = draw_points(30, rng);
    Rng yrng(66);
    for (std::size_t i = 0; i < 12; ++i) gp.add(zs[i], yrng.normal());
    gp.track_candidates(pack(cands));
    for (std::size_t i = 12; i < 30; ++i) gp.add(zs[i], yrng.normal());
    std::vector<double> m(cands.size()), v(cands.size());
    for (std::size_t j = 0; j < cands.size(); ++j) {
      m[j] = gp.tracked_mean(j);
      v[j] = gp.tracked_variance(j);
    }
    means.push_back(std::move(m));
    vars.push_back(std::move(v));
  }
  EXPECT_EQ(means[0], means[1]);  // exact, not approximate
  EXPECT_EQ(means[0], means[2]);
  EXPECT_EQ(vars[0], vars[1]);
  EXPECT_EQ(vars[0], vars[2]);
}

// ---------------------------------------------------------------------------
// EdgeBol trajectories are bit-identical for any num_threads.
// ---------------------------------------------------------------------------

struct Trajectory {
  std::vector<std::size_t> picks;
  std::vector<std::size_t> safe_sizes;
  std::vector<double> kpis;

  bool operator==(const Trajectory&) const = default;
};

Trajectory run_trajectory(std::size_t num_threads) {
  env::GridSpec spec;
  spec.levels_per_dim = 4;  // 256 candidates keeps the test quick
  core::EdgeBolConfig cfg;
  cfg.num_threads = num_threads;
  core::EdgeBol agent(env::ControlGrid(spec), cfg);
  env::Testbed tb = env::make_static_testbed(35.0);

  // Alternate between two contexts so the run exercises both the per-period
  // fold and the context-switch rebuild paths.
  const env::Context ctx_a{2.0, 12.0, 3.0};
  const env::Context ctx_b{6.0, 9.0, 8.0};

  Trajectory tr;
  for (int t = 0; t < 30; ++t) {
    const env::Context& c = (t / 5) % 2 == 0 ? ctx_a : ctx_b;
    const core::Decision d = agent.select(c);
    const env::Measurement m = tb.step(d.policy);
    agent.update(c, d.policy_index, m);
    tr.picks.push_back(d.policy_index);
    tr.safe_sizes.push_back(d.safe_set_size);
    tr.kpis.push_back(m.delay_s);
    tr.kpis.push_back(m.map);
    tr.kpis.push_back(m.server_power_w);
    tr.kpis.push_back(m.bs_power_w);
  }
  return tr;
}

TEST(GpParallel, EdgeBolTrajectoryBitIdenticalAcrossThreadCounts) {
  const Trajectory t1 = run_trajectory(1);
  const Trajectory t2 = run_trajectory(2);
  const Trajectory t8 = run_trajectory(8);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

// SafeOpt acquisition walks the precomputed CSR adjacency — same check.
TEST(GpParallel, SafeOptTrajectoryBitIdenticalAcrossThreadCounts) {
  auto run_safeopt = [](std::size_t num_threads) {
    env::GridSpec spec;
    spec.levels_per_dim = 4;
    core::EdgeBolConfig cfg;
    cfg.num_threads = num_threads;
    cfg.acquisition = core::AcquisitionKind::kSafeOpt;
    core::EdgeBol agent(env::ControlGrid(spec), cfg);
    env::Testbed tb = env::make_static_testbed(35.0);
    Trajectory tr;
    for (int t = 0; t < 20; ++t) {
      const env::Context c = tb.context();
      const core::Decision d = agent.select(c);
      const env::Measurement m = tb.step(d.policy);
      agent.update(c, d.policy_index, m);
      tr.picks.push_back(d.policy_index);
      tr.safe_sizes.push_back(d.safe_set_size);
      tr.kpis.push_back(m.delay_s);
    }
    return tr;
  };
  const Trajectory t1 = run_safeopt(1);
  const Trajectory t8 = run_safeopt(8);
  EXPECT_EQ(t1, t8);
}

// ---------------------------------------------------------------------------
// fit_hyperparameters is bit-identical with and without a pool.
// ---------------------------------------------------------------------------

TEST(GpParallel, FitHyperparametersBitIdenticalAcrossPools) {
  Rng data_rng(9);
  const auto zs = draw_points(24, data_rng);
  Vector ys(zs.size());
  Rng yrng(10);
  for (double& v : ys) v = yrng.normal();

  gp::HyperoptOptions opts;
  opts.num_random_starts = 10;
  opts.refine_rounds = 2;

  std::vector<gp::GpHyperparams> fits;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    gp::HyperoptOptions o = opts;
    if (threads > 1) o.pool = std::make_shared<common::ThreadPool>(threads);
    Rng rng(4242);  // identical draw sequence for every run
    fits.push_back(gp::fit_hyperparameters(zs, ys, rng, o));
  }

  for (std::size_t i = 1; i < fits.size(); ++i) {
    EXPECT_EQ(fits[0].lengthscales, fits[i].lengthscales);
    EXPECT_EQ(fits[0].amplitude, fits[i].amplitude);
    EXPECT_EQ(fits[0].noise_variance, fits[i].noise_variance);
    EXPECT_EQ(fits[0].family, fits[i].family);
  }
}

}  // namespace
}  // namespace edgebol
