#include "telemetry/power_meter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace edgebol::telemetry {
namespace {

TEST(PowerMeter, AutoRangeSelectsSmallestCoveringRange) {
  const PowerMeter m;
  EXPECT_DOUBLE_EQ(m.select_range_w(2.0), 3.0);
  EXPECT_DOUBLE_EQ(m.select_range_w(5.5), 30.0);
  EXPECT_DOUBLE_EQ(m.select_range_w(150.0), 300.0);
  EXPECT_DOUBLE_EQ(m.select_range_w(9999.0), 3000.0);  // over-range clamps
}

TEST(PowerMeter, ResolutionFollowsRange) {
  const PowerMeter m;
  EXPECT_NEAR(m.resolution_w(5.5), 30.0 / 30000.0, 1e-12);
  EXPECT_GT(m.resolution_w(150.0), m.resolution_w(5.5));
}

TEST(PowerMeter, ReadingsAreUnbiasedWithinSpec) {
  const PowerMeter m;
  Rng rng(3);
  for (double truth : {5.2, 130.0}) {
    RunningStats s;
    for (int i = 0; i < 20000; ++i) s.add(m.reading_w(truth, rng));
    EXPECT_NEAR(s.mean(), truth, 0.002 * truth + 0.01);
    // Spread bounded by the accuracy spec (2-sigma bound) + quantization.
    const double bound = 0.001 * truth + 0.0005 * m.select_range_w(truth);
    EXPECT_LT(s.stddev(), bound);
  }
}

TEST(PowerMeter, ReadingsAreQuantized) {
  PowerMeterSpec spec;
  spec.reading_accuracy_frac = 0.0;
  spec.range_accuracy_frac = 0.0;
  spec.counts_per_range = 100.0;  // coarse display for the test
  const PowerMeter m(spec);
  Rng rng(5);
  const double lsb = m.select_range_w(5.0) / 100.0;
  const double r = m.reading_w(5.123456, rng);
  EXPECT_NEAR(std::remainder(r, lsb), 0.0, 1e-12);
}

TEST(PowerMeter, IntegrationAveragesTheSignal) {
  const PowerMeter m;
  Rng rng(7);
  // Square wave 100 W / 140 W with 50% duty -> mean 120 W.
  const double avg = m.integrate_w(
      [](double t) { return std::fmod(t, 0.2) < 0.1 ? 100.0 : 140.0; }, 10.0,
      rng);
  EXPECT_NEAR(avg, 120.0, 2.5);
}

TEST(PowerMeter, IntegrationUsesAtLeastOneSample) {
  const PowerMeter m;
  Rng rng(9);
  EXPECT_NEAR(m.integrate_w([](double) { return 50.0; }, 0.01, rng), 50.0,
              0.5);
}

TEST(PowerMeter, Validation) {
  PowerMeterSpec bad;
  bad.ranges_w = {};
  EXPECT_THROW(PowerMeter{bad}, std::invalid_argument);
  bad = PowerMeterSpec{};
  bad.ranges_w = {30.0, 3.0};
  EXPECT_THROW(PowerMeter{bad}, std::invalid_argument);
  bad = PowerMeterSpec{};
  bad.counts_per_range = 0.0;
  EXPECT_THROW(PowerMeter{bad}, std::invalid_argument);

  const PowerMeter m;
  Rng rng(1);
  EXPECT_THROW(m.reading_w(-1.0, rng), std::invalid_argument);
  EXPECT_THROW(m.integrate_w([](double) { return 1.0; }, 0.0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace edgebol::telemetry
