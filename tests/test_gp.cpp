#include "gp/gp_regressor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/rng.hpp"

namespace edgebol::gp {
namespace {

std::unique_ptr<Kernel> unit_matern(std::size_t dims, double ls = 1.0) {
  return std::make_unique<Matern32Kernel>(Vector(dims, ls), 1.0);
}

TEST(GpRegressor, PriorPredictionIsZeroMeanFullVariance) {
  GpRegressor gp(unit_matern(2), 1e-4);
  const Prediction p = gp.predict({0.3, 0.7});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_DOUBLE_EQ(p.variance, 1.0);
  EXPECT_DOUBLE_EQ(p.stddev(), 1.0);
}

TEST(GpRegressor, SinglePointPosteriorMatchesAnalyticFormula) {
  // With one observation (z0, y0): mu(z) = k(z,z0) y0 / (1 + noise),
  // var(z) = 1 - k(z,z0)^2 / (1 + noise).
  const double noise = 0.01;
  GpRegressor gp(unit_matern(1), noise);
  gp.add({0.0}, 2.0);
  const Matern32Kernel k({1.0}, 1.0);
  const double kz = k({0.5}, {0.0});
  const Prediction p = gp.predict({0.5});
  EXPECT_NEAR(p.mean, kz * 2.0 / (1.0 + noise), 1e-10);
  EXPECT_NEAR(p.variance, 1.0 - kz * kz / (1.0 + noise), 1e-10);
}

TEST(GpRegressor, NearInterpolationWithSmallNoise) {
  GpRegressor gp(unit_matern(1, 0.5), 1e-8);
  gp.add({0.0}, 1.0);
  gp.add({1.0}, -1.0);
  EXPECT_NEAR(gp.predict({0.0}).mean, 1.0, 1e-4);
  EXPECT_NEAR(gp.predict({1.0}).mean, -1.0, 1e-4);
  EXPECT_LT(gp.predict({0.0}).variance, 1e-4);
}

TEST(GpRegressor, VarianceShrinksNearDataAndRecoversFarAway) {
  GpRegressor gp(unit_matern(1), 1e-4);
  gp.add({0.0}, 0.5);
  EXPECT_LT(gp.predict({0.05}).variance, 0.05);
  EXPECT_GT(gp.predict({10.0}).variance, 0.99);
}

TEST(GpRegressor, HigherNoiseMeansLessConfidence) {
  GpRegressor lo(unit_matern(1), 1e-4);
  GpRegressor hi(unit_matern(1), 0.5);
  lo.add({0.0}, 1.0);
  hi.add({0.0}, 1.0);
  EXPECT_LT(lo.predict({0.0}).variance, hi.predict({0.0}).variance);
  EXPECT_LT(std::abs(hi.predict({0.0}).mean), 1.0);  // shrinkage toward prior
}

TEST(GpRegressor, RepeatedObservationsAverageOutNoise) {
  Rng rng(5);
  GpRegressor gp(unit_matern(1), 0.04);
  for (int i = 0; i < 60; ++i) gp.add({0.0}, 1.0 + rng.normal(0.0, 0.2));
  EXPECT_NEAR(gp.predict({0.0}).mean, 1.0, 0.1);
  EXPECT_LT(gp.predict({0.0}).variance, 0.01);
}

TEST(GpRegressor, LogMarginalLikelihoodMatchesDirectFormula) {
  GpRegressor gp(unit_matern(1), 0.1);
  gp.add({0.0}, 1.0);
  // n=1: lml = -0.5 y^2/(1+noise) - 0.5 log(1+noise) - 0.5 log(2 pi).
  const double expected = -0.5 * 1.0 / 1.1 - 0.5 * std::log(1.1) -
                          0.5 * std::log(2.0 * std::numbers::pi);
  EXPECT_NEAR(gp.log_marginal_likelihood(), expected, 1e-10);
}

TEST(GpRegressor, BetterFittingHyperparamsScoreHigherLml) {
  Rng rng(7);
  // Smooth function sampled on a grid; long length-scale should win.
  auto build = [&](double ls) {
    GpRegressor gp(unit_matern(1, ls), 1e-2);
    for (int i = 0; i <= 20; ++i) {
      const double x = i / 20.0;
      gp.add({x}, std::sin(2.0 * x));
    }
    return gp.log_marginal_likelihood();
  };
  EXPECT_GT(build(1.0), build(0.02));
}

TEST(GpRegressor, TrackedPredictionsMatchDirectPredict) {
  Rng rng(11);
  GpRegressor gp(unit_matern(2, 0.7), 1e-3);
  std::vector<Vector> cands;
  for (int i = 0; i < 25; ++i) cands.push_back({rng.uniform(), rng.uniform()});
  gp.track_candidates(cands);
  for (int i = 0; i < 15; ++i) {
    gp.add({rng.uniform(), rng.uniform()}, rng.normal());
  }
  for (std::size_t j = 0; j < cands.size(); ++j) {
    const Prediction direct = gp.predict(cands[j]);
    EXPECT_NEAR(gp.tracked_mean(j), direct.mean, 1e-8);
    EXPECT_NEAR(gp.tracked_variance(j), direct.variance, 1e-8);
  }
}

TEST(GpRegressor, TrackingAfterDataMatchesTrackingBefore) {
  Rng rng(13);
  GpRegressor before(unit_matern(1), 1e-3);
  GpRegressor after(unit_matern(1), 1e-3);
  std::vector<Vector> cands{{0.1}, {0.5}, {0.9}};
  before.track_candidates(cands);
  for (int i = 0; i < 10; ++i) {
    const Vector z{rng.uniform()};
    const double y = rng.normal();
    before.add(z, y);
    after.add(z, y);
  }
  after.track_candidates(cands);
  for (std::size_t j = 0; j < cands.size(); ++j) {
    EXPECT_NEAR(before.tracked_mean(j), after.tracked_mean(j), 1e-9);
    EXPECT_NEAR(before.tracked_variance(j), after.tracked_variance(j), 1e-9);
  }
}

TEST(GpRegressor, ClearTrackedCandidates) {
  GpRegressor gp(unit_matern(1), 1e-3);
  gp.track_candidates({{0.0}});
  EXPECT_TRUE(gp.has_tracked_candidates());
  gp.clear_tracked_candidates();
  EXPECT_FALSE(gp.has_tracked_candidates());
  EXPECT_EQ(gp.num_tracked(), 0u);
}

TEST(GpRegressor, CopyIsIndependent) {
  GpRegressor a(unit_matern(1), 1e-3);
  a.add({0.0}, 1.0);
  GpRegressor b = a;
  b.add({0.5}, -1.0);
  EXPECT_EQ(a.num_observations(), 1u);
  EXPECT_EQ(b.num_observations(), 2u);
  EXPECT_NEAR(a.predict({0.0}).mean, 1.0, 0.01);
}

TEST(GpRegressor, InputValidation) {
  EXPECT_THROW(GpRegressor(nullptr, 1e-3), std::invalid_argument);
  EXPECT_THROW(GpRegressor(unit_matern(1), 0.0), std::invalid_argument);
  GpRegressor gp(unit_matern(2), 1e-3);
  EXPECT_THROW(gp.add({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(gp.predict({1.0}), std::invalid_argument);
  EXPECT_THROW(gp.track_candidates({{1.0}}), std::invalid_argument);
}

TEST(GpRegressor, ManyObservationsStayNumericallyStable) {
  Rng rng(17);
  GpRegressor gp(unit_matern(3, 0.4), 1e-2);
  for (int i = 0; i < 300; ++i) {
    gp.add({rng.uniform(), rng.uniform(), rng.uniform()}, rng.normal());
  }
  const Prediction p = gp.predict({0.5, 0.5, 0.5});
  EXPECT_TRUE(std::isfinite(p.mean));
  EXPECT_GE(p.variance, 0.0);
  EXPECT_LE(p.variance, 1.0 + 1e-9);
}

}  // namespace
}  // namespace edgebol::gp
