#include <gtest/gtest.h>

#include <stdexcept>

#include "common/stats.hpp"
#include "edge/gpu_model.hpp"
#include "edge/server.hpp"

namespace edgebol::edge {
namespace {

TEST(GpuModel, PowerLimitMapsGammaLinearly) {
  const GpuModel g;
  EXPECT_DOUBLE_EQ(g.power_limit_w(0.0), g.params().min_power_limit_w);
  EXPECT_DOUBLE_EQ(g.power_limit_w(1.0), g.params().max_power_limit_w);
  EXPECT_NEAR(g.power_limit_w(0.5),
              (g.params().min_power_limit_w + g.params().max_power_limit_w) / 2,
              1e-9);
}

TEST(GpuModel, SpeedIncreasesWithGamma) {
  const GpuModel g;
  double prev = 0.0;
  for (double gamma : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double s = g.speed_factor(gamma);
    EXPECT_GT(s, prev);
    EXPECT_LE(s, 1.0 + 1e-12);
    prev = s;
  }
  EXPECT_DOUBLE_EQ(g.speed_factor(0.0), g.params().speed_floor);
}

TEST(GpuModel, DrawSaturatesAtPeakButSpeedKeepsRising) {
  // The 2080 Ti draws ~190 W flat out: limits above that no longer raise
  // the measured power, but the relaxed envelope still lets clocks boost.
  const GpuModel g;
  EXPECT_DOUBLE_EQ(g.active_draw_w(1.0), g.params().peak_draw_w);
  EXPECT_LT(g.active_draw_w(0.0), g.params().peak_draw_w);
  EXPECT_NEAR(g.speed_factor(1.0), 1.0, 1e-9);
  EXPECT_GT(g.speed_factor(0.9), g.speed_factor(0.6));
}

TEST(GpuModel, HigherGammaMeansFasterInference) {
  const GpuModel g;
  EXPECT_LT(g.infer_time_s(1.0, 1.0), g.infer_time_s(1.0, 0.0));
}

TEST(GpuModel, LowerResolutionIsSlowerOnTheDetector) {
  // Fig. 3 (bottom): low-res frames make the Faster R-CNN work harder.
  const GpuModel g;
  EXPECT_GT(g.infer_time_s(0.25, 1.0), g.infer_time_s(1.0, 1.0));
  EXPECT_GT(g.infer_time_s(0.25, 0.1), g.infer_time_s(1.0, 0.1));
}

TEST(GpuModel, InferenceTimeInPrototypeRange) {
  const GpuModel g;
  // Fig. 3 (bottom) spans roughly 110-320 ms across policies.
  EXPECT_GT(g.infer_time_s(1.0, 1.0), 0.08);
  EXPECT_LT(g.infer_time_s(0.25, 0.0), 0.40);
}

TEST(GpuModel, SampleUnbiasedAndPositive) {
  const GpuModel g;
  Rng rng(3);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    const double t = g.sample_infer_time_s(0.5, 0.5, rng);
    EXPECT_GT(t, 0.0);
    s.add(t);
  }
  EXPECT_NEAR(s.mean(), g.infer_time_s(0.5, 0.5),
              0.01 * g.infer_time_s(0.5, 0.5));
}

TEST(GpuModel, InvalidInputsThrow) {
  const GpuModel g;
  EXPECT_THROW(g.power_limit_w(-0.1), std::invalid_argument);
  EXPECT_THROW(g.speed_factor(1.1), std::invalid_argument);
  EXPECT_THROW(g.infer_time_s(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(g.infer_time_s(1.1, 0.5), std::invalid_argument);
  GpuParams bad;
  bad.speed_floor = 0.0;
  EXPECT_THROW(GpuModel{bad}, std::invalid_argument);
}

TEST(EdgeServer, NoArrivalsMeansIdle) {
  EdgeServer s;
  const ServerLoadReport r = s.load_report(0.0, 1.0);
  EXPECT_DOUBLE_EQ(r.utilization, 0.0);
  EXPECT_DOUBLE_EQ(r.queue_wait_s, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_power_w(0.0), s.params().host_idle_w);
}

TEST(EdgeServer, UtilizationIsArrivalRateTimesService) {
  EdgeServer s;
  s.set_gpu_policy(1.0);
  const ServerLoadReport r = s.load_report(2.0, 1.0);
  EXPECT_NEAR(r.utilization, 2.0 * r.service_time_s, 1e-12);
}

TEST(EdgeServer, UtilizationIsCapped) {
  EdgeServer s;
  const ServerLoadReport r = s.load_report(1e6, 1.0);
  EXPECT_LE(r.utilization, s.params().max_utilization + 1e-12);
  EXPECT_GT(r.queue_wait_s, 0.0);
}

TEST(EdgeServer, Md1WaitGrowsSuperlinearly) {
  EdgeServer s;
  const double w1 = s.load_report(1.0, 1.0).queue_wait_s;
  const double w2 = s.load_report(2.0, 1.0).queue_wait_s;
  const double w4 = s.load_report(4.0, 1.0).queue_wait_s;
  EXPECT_GT(w2, w1);
  EXPECT_GT(w4 - w2, w2 - w1);
}

TEST(EdgeServer, PowerMonotoneInUtilizationAndGamma) {
  EdgeServer s;
  s.set_gpu_policy(1.0);
  EXPECT_GT(s.mean_power_w(0.8), s.mean_power_w(0.2));
  const double high_gamma = s.mean_power_w(0.5);
  s.set_gpu_policy(0.0);
  EXPECT_LT(s.mean_power_w(0.5), high_gamma);
}

TEST(EdgeServer, PowerInPrototypeRange) {
  // Figs. 2-4 span roughly 72 W idle to ~185 W flat out.
  EdgeServer s;
  s.set_gpu_policy(1.0);
  EXPECT_GT(s.mean_power_w(0.0), 50.0);
  EXPECT_LT(s.mean_power_w(0.0), 100.0);
  EXPECT_GT(s.mean_power_w(0.97), 160.0);
  EXPECT_LT(s.mean_power_w(0.97), 240.0);
}

TEST(EdgeServer, SampleUnbiased) {
  EdgeServer s;
  s.set_gpu_policy(0.5);
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(s.sample_power_w(0.5, rng));
  EXPECT_NEAR(stats.mean(), s.mean_power_w(0.5), 0.2);
}

TEST(EdgeServer, InvalidInputsThrow) {
  EdgeServer s;
  EXPECT_THROW(s.set_gpu_policy(-0.1), std::invalid_argument);
  EXPECT_THROW(s.load_report(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(s.mean_power_w(1.1), std::invalid_argument);
  ServerParams bad;
  bad.max_utilization = 1.0;
  EXPECT_THROW(EdgeServer{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace edgebol::edge
