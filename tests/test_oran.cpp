#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "env/scenarios.hpp"
#include "fault/fault.hpp"
#include "oran/messages.hpp"
#include "oran/oran_env.hpp"
#include "oran/ric.hpp"

namespace edgebol::oran {
namespace {

TEST(Messages, A1PolicyRoundTrip) {
  A1PolicySetup m{42, 0.75, 16};
  const A1PolicySetup r = a1_policy_setup_from_json(to_json(m));
  EXPECT_EQ(r.policy_id, 42);
  EXPECT_DOUBLE_EQ(r.airtime, 0.75);
  EXPECT_EQ(r.mcs_cap, 16);
}

TEST(Messages, AllRoundTrips) {
  EXPECT_TRUE(a1_policy_ack_from_json(to_json(A1PolicyAck{7, true})).accepted);
  const E2ControlRequest e2 =
      e2_control_request_from_json(to_json(E2ControlRequest{9, 0.3, 4}));
  EXPECT_EQ(e2.request_id, 9);
  EXPECT_DOUBLE_EQ(e2.airtime, 0.3);
  EXPECT_FALSE(
      e2_control_ack_from_json(to_json(E2ControlAck{9, false})).success);
  EXPECT_DOUBLE_EQ(
      e2_kpi_indication_from_json(to_json(E2KpiIndication{1, 5.25}))
          .bs_power_w,
      5.25);
  EXPECT_EQ(o1_kpi_report_from_json(to_json(O1KpiReport{3, 6.0})).sequence, 3);
  const ServicePolicyRequest s =
      service_policy_request_from_json(to_json(ServicePolicyRequest{0.5, 0.9}));
  EXPECT_DOUBLE_EQ(s.resolution, 0.5);
  EXPECT_DOUBLE_EQ(s.gpu_speed, 0.9);
}

TEST(Messages, WhitespaceAndOrderTolerant) {
  const A1PolicySetup r = a1_policy_setup_from_json(
      "{ \"mcs_cap\" : 5 , \"airtime\" : 0.5 , \"policy_id\" : 1 }");
  EXPECT_EQ(r.mcs_cap, 5);
  EXPECT_DOUBLE_EQ(r.airtime, 0.5);
}

TEST(Messages, MalformedJsonThrows) {
  EXPECT_THROW(a1_policy_setup_from_json("{}"), std::invalid_argument);
  EXPECT_THROW(a1_policy_setup_from_json("{\"policy_id\":1,\"airtime\":x}"),
               std::invalid_argument);
  EXPECT_THROW(
      a1_policy_setup_from_json(
          "{\"policy_id\":1.5,\"airtime\":0.5,\"mcs_cap\":2}"),
      std::invalid_argument);
  EXPECT_THROW(e2_control_ack_from_json("{\"request_id\":1,\"success\":2}"),
               std::invalid_argument);
}

TEST(NearRtRic, RejectsWithoutE2Node) {
  NearRtRic ric;
  EXPECT_FALSE(ric.has_e2_node());
  const A1PolicyAck ack = ric.handle_a1_policy({1, 0.5, 10});
  EXPECT_FALSE(ack.accepted);
}

class RecordingNode : public E2Node {
 public:
  E2ControlAck handle_control(const E2ControlRequest& r) override {
    last = r;
    ++count;
    return {r.request_id, true};
  }
  E2ControlRequest last{};
  int count = 0;
};

TEST(NearRtRic, ForwardsPolicyOverE2) {
  NearRtRic ric;
  RecordingNode node;
  ric.attach_e2_node(&node);
  const A1PolicyAck ack = ric.handle_a1_policy({1, 0.6, 12});
  EXPECT_TRUE(ack.accepted);
  EXPECT_EQ(node.count, 1);
  EXPECT_DOUBLE_EQ(node.last.airtime, 0.6);
  EXPECT_EQ(node.last.mcs_cap, 12);
  EXPECT_EQ(ric.e2().messages_carried(), 2u);  // request + ack
}

TEST(NearRtRic, RejectsInvalidPolicy) {
  NearRtRic ric;
  RecordingNode node;
  ric.attach_e2_node(&node);
  EXPECT_FALSE(ric.handle_a1_policy({1, 1.5, 12}).accepted);
  EXPECT_FALSE(ric.handle_a1_policy({1, 0.5, 99}).accepted);
  EXPECT_EQ(node.count, 0);
}

TEST(NonRtRic, KpiPathDeliversToDataCollector) {
  NearRtRic near;
  NonRtRic non(near);
  EXPECT_FALSE(non.has_kpi());
  EXPECT_THROW(non.latest_kpi(), std::logic_error);
  near.handle_e2_indication({1, 5.5});
  near.handle_e2_indication({2, 5.7});
  ASSERT_TRUE(non.has_kpi());
  EXPECT_EQ(non.kpi_count(), 2u);
  EXPECT_DOUBLE_EQ(non.latest_kpi().bs_power_w, 5.7);
  EXPECT_EQ(non.latest_kpi().sequence, 2);
  EXPECT_GE(near.o1().messages_carried(), 2u);
}

TEST(NonRtRic, DeploysSequencedPolicies) {
  NearRtRic near;
  RecordingNode node;
  near.attach_e2_node(&node);
  NonRtRic non(near);
  EXPECT_TRUE(non.deploy_radio_policy(0.5, 10).accepted);
  EXPECT_TRUE(non.deploy_radio_policy(0.7, 12).accepted);
  EXPECT_EQ(node.count, 2);
  EXPECT_EQ(non.a1().messages_carried(), 4u);  // 2 setups + 2 acks
}

TEST(A1Lifecycle, CreateQueryDeleteRoundTrip) {
  NearRtRic near;
  RecordingNode node;
  near.attach_e2_node(&node);
  NonRtRic non(near);

  ASSERT_TRUE(non.deploy_radio_policy(0.6, 12).accepted);
  const std::int64_t id = non.last_policy_id();
  EXPECT_EQ(near.active_policy_count(), 1u);

  const auto stored = non.query_radio_policy(id);
  ASSERT_TRUE(stored.has_value());
  EXPECT_DOUBLE_EQ(stored->airtime, 0.6);
  EXPECT_EQ(stored->mcs_cap, 12);

  EXPECT_TRUE(non.delete_radio_policy(id));
  EXPECT_EQ(near.active_policy_count(), 0u);
  EXPECT_FALSE(non.query_radio_policy(id).has_value());
  EXPECT_FALSE(non.delete_radio_policy(id));  // already gone
}

TEST(A1Lifecycle, RejectedPoliciesAreNotStored) {
  NearRtRic near;
  RecordingNode node;
  near.attach_e2_node(&node);
  NonRtRic non(near);
  EXPECT_FALSE(non.deploy_radio_policy(2.0, 12).accepted);
  EXPECT_EQ(near.active_policy_count(), 0u);
}

TEST(A1Lifecycle, MultiplePoliciesCoexist) {
  NearRtRic near;
  RecordingNode node;
  near.attach_e2_node(&node);
  NonRtRic non(near);
  non.deploy_radio_policy(0.5, 10);
  const std::int64_t first = non.last_policy_id();
  non.deploy_radio_policy(0.7, 14);
  EXPECT_EQ(near.active_policy_count(), 2u);
  EXPECT_TRUE(non.delete_radio_policy(first));
  EXPECT_EQ(near.active_policy_count(), 1u);
}

TEST(InterfaceFabric, BoundedLog) {
  InterfaceFabric f("test", 2);
  f.record("a");
  f.record("b");
  f.record("c");
  EXPECT_EQ(f.messages_carried(), 3u);
  ASSERT_EQ(f.frame_log().size(), 2u);
  EXPECT_EQ(f.frame_log().front(), "b");
}

TEST(InterfaceFabric, DelayedFrameOrder) {
  // Pins the "fabric delayed frame order" guarantee documented on
  // InterfaceFabric::transmit: a delayed frame is released exactly one
  // delivery opportunity later and always ahead of every copy of the frame
  // offered at that opportunity.
  fault::FaultInjector injector{fault::FaultPlan{.seed = 7}};
  InterfaceFabric fabric("e2");

  fault::FrameFaultRates delay_all;
  delay_all.delay = 1.0;
  fabric.enable_faults(&injector, delay_all);
  EXPECT_TRUE(fabric.transmit("first").empty());
  EXPECT_EQ(fabric.frames_delayed(), 1u);

  // The next transmit also draws kDelay: "first" is released while "second"
  // takes its place in the parking slot — one opportunity late, no more.
  const std::vector<std::string> second = fabric.transmit("second");
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], "first");
  EXPECT_EQ(fabric.frames_delayed(), 2u);

  // Clean fate: the parked "second" precedes the current "third".
  fabric.enable_faults(&injector, fault::FrameFaultRates{});
  const std::vector<std::string> third = fabric.transmit("third");
  ASSERT_EQ(third.size(), 2u);
  EXPECT_EQ(third[0], "second");
  EXPECT_EQ(third[1], "third");

  // Duplicate fate: both copies of the current frame still trail the
  // released frame — a delayed frame is never overtaken.
  fabric.enable_faults(&injector, delay_all);
  EXPECT_TRUE(fabric.transmit("fourth").empty());
  fault::FrameFaultRates dup_all;
  dup_all.duplicate = 1.0;
  fabric.enable_faults(&injector, dup_all);
  const std::vector<std::string> fifth = fabric.transmit("fifth");
  ASSERT_EQ(fifth.size(), 3u);
  EXPECT_EQ(fifth[0], "fourth");
  EXPECT_EQ(fifth[1], "fifth");
  EXPECT_EQ(fifth[2], "fifth");
}

TEST(ServiceController, AppliesAndValidates) {
  ServiceController c;
  c.apply({0.5, 0.25});
  EXPECT_DOUBLE_EQ(c.resolution(), 0.5);
  EXPECT_DOUBLE_EQ(c.gpu_speed(), 0.25);
  EXPECT_EQ(c.requests_handled(), 1u);
  EXPECT_THROW(c.apply({0.0, 0.5}), std::invalid_argument);
  EXPECT_THROW(c.apply({0.5, 1.5}), std::invalid_argument);
}

TEST(OranManagedTestbed, EquivalentToDirectStepping) {
  env::TestbedConfig cfg;
  cfg.seed = 1234;
  env::Testbed direct = env::make_static_testbed(30.0, cfg);
  env::Testbed managed_tb = env::make_static_testbed(30.0, cfg);
  OranManagedTestbed managed(managed_tb);

  env::ControlPolicy p;
  p.resolution = 0.75;
  p.airtime = 0.6;
  p.gpu_speed = 0.5;
  p.mcs_cap = 14;
  for (int i = 0; i < 5; ++i) {
    const env::Measurement a = direct.step(p);
    const env::Measurement b = managed.step(p);
    EXPECT_DOUBLE_EQ(a.delay_s, b.delay_s);
    EXPECT_DOUBLE_EQ(a.map, b.map);
    EXPECT_DOUBLE_EQ(a.bs_power_w, b.bs_power_w);
    EXPECT_DOUBLE_EQ(a.server_power_w, b.server_power_w);
  }
}

TEST(OranManagedTestbed, KpiFlowsThroughO1) {
  env::Testbed tb = env::make_static_testbed(30.0);
  OranManagedTestbed managed(tb);
  env::ControlPolicy p;
  const env::Measurement m = managed.step(p);
  EXPECT_EQ(managed.non_rt_ric().kpi_count(), 1u);
  EXPECT_DOUBLE_EQ(managed.non_rt_ric().latest_kpi().bs_power_w,
                   m.bs_power_w);
  EXPECT_EQ(managed.service_controller().requests_handled(), 1u);
}

TEST(Messages, TryDecodersMatchThrowingParsersOnCleanFrames) {
  const auto setup =
      try_a1_policy_setup_from_json(to_json(A1PolicySetup{42, 0.75, 16}));
  ASSERT_TRUE(setup.has_value());
  EXPECT_EQ(setup->policy_id, 42);
  EXPECT_DOUBLE_EQ(setup->airtime, 0.75);
  EXPECT_EQ(setup->mcs_cap, 16);

  EXPECT_TRUE(try_a1_policy_ack_from_json(to_json(A1PolicyAck{7, true}))
                  ->accepted);
  EXPECT_EQ(try_e2_control_request_from_json(to_json(E2ControlRequest{9, 0.3, 4}))
                ->request_id,
            9);
  EXPECT_FALSE(
      try_e2_control_ack_from_json(to_json(E2ControlAck{9, false}))->success);
  EXPECT_DOUBLE_EQ(
      try_e2_kpi_indication_from_json(to_json(E2KpiIndication{1, 5.25}))
          ->bs_power_w,
      5.25);
  EXPECT_EQ(try_o1_kpi_report_from_json(to_json(O1KpiReport{3, 6.0}))->sequence,
            3);
  EXPECT_DOUBLE_EQ(try_service_policy_request_from_json(
                       to_json(ServicePolicyRequest{0.5, 0.9}))
                       ->resolution,
                   0.5);
}

TEST(Messages, TryDecodersReturnNulloptInsteadOfThrowing) {
  EXPECT_EQ(try_a1_policy_setup_from_json("{}"), std::nullopt);
  EXPECT_EQ(try_a1_policy_setup_from_json("not json at all"), std::nullopt);
  EXPECT_EQ(try_e2_control_ack_from_json("{\"request_id\":1,\"success\":2}"),
            std::nullopt);
  EXPECT_EQ(try_o1_kpi_report_from_json(""), std::nullopt);
}

TEST(Messages, FuzzedFramesNeverThrowAndCleanFramesRoundTrip) {
  // Fuzz-style sweep: every frame type, mutated by the fault injector's
  // corruption modes (truncation, byte flips, junk splices) many times.
  // The try-decoders must never throw; whenever a mutant still decodes it
  // must do so silently, and the unmutated frame must decode exactly.
  const std::vector<std::string> frames = {
      to_json(A1PolicySetup{42, 0.75, 16}),
      to_json(A1PolicyAck{7, true}),
      to_json(E2ControlRequest{9, 0.3, 4}),
      to_json(E2ControlAck{9, false}),
      to_json(E2KpiIndication{11, 5.25}),
      to_json(O1KpiReport{3, 6.0}),
      to_json(ServicePolicyRequest{0.5, 0.9}),
  };
  fault::FaultInjector injector{fault::FaultPlan{.seed = 1234}};
  for (const std::string& frame : frames) {
    for (int i = 0; i < 300; ++i) {
      const std::string mutant = injector.corrupt_frame(frame);
      EXPECT_NO_THROW({
        (void)try_a1_policy_setup_from_json(mutant);
        (void)try_a1_policy_ack_from_json(mutant);
        (void)try_e2_control_request_from_json(mutant);
        (void)try_e2_control_ack_from_json(mutant);
        (void)try_e2_kpi_indication_from_json(mutant);
        (void)try_o1_kpi_report_from_json(mutant);
        (void)try_service_policy_request_from_json(mutant);
      });
    }
  }
  // Round trip on the clean frames survives the sweep (the decoders are
  // pure functions; fuzzing did not poison any shared state).
  EXPECT_EQ(try_a1_policy_setup_from_json(frames[0])->policy_id, 42);
  EXPECT_EQ(try_o1_kpi_report_from_json(frames[5])->sequence, 3);
}

TEST(OranManagedTestbed, RejectedPolicyThrows) {
  env::Testbed tb = env::make_static_testbed(30.0);
  OranManagedTestbed managed(tb);
  env::ControlPolicy p;
  p.airtime = 0.0;  // invalid for the radio side
  EXPECT_THROW(managed.step(p), std::runtime_error);
}

}  // namespace
}  // namespace edgebol::oran
