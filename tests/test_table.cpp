#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace edgebol {
namespace {

TEST(Table, PrintsHeaderRuleAndRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table t({"x", "y"});
  t.add_row({"123456", "1"});
  std::ostringstream os;
  t.print(os);
  std::istringstream is(os.str());
  std::string header, rule, row;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row);
  EXPECT_EQ(header.size(), row.size());
}

TEST(Table, DoubleRowsFormatted) {
  Table t({"v"});
  t.add_numeric_row({1.23456}, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
  EXPECT_EQ(os.str().find("1.234"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, Counters) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  banner(os, "Fig. 1");
  EXPECT_NE(os.str().find("==== Fig. 1 ===="), std::string::npos);
}

}  // namespace
}  // namespace edgebol
