// Transport-layer tests: the poll() event loop, the TCP transport's queues,
// backpressure, supervision (reconnect, peer adoption, peer timeout), the
// send-side chaos shim, and the loopback InterfaceFabric behind the same
// net::Transport interface.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "net/chaos.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "net/tcp_transport.hpp"
#include "net/transport.hpp"
#include "oran/ric.hpp"

namespace edgebol::net {
namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Poll `cond` until it holds or `timeout_ms` elapses. All timing-sensitive
/// assertions go through this, sized for slow sanitizer runs.
bool eventually(const std::function<bool()>& cond, int timeout_ms = 20000) {
  const double deadline = now_ms() + timeout_ms;
  while (now_ms() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

TcpTransportConfig cfg(std::string name,
                       BackpressurePolicy policy = BackpressurePolicy::kBlock) {
  TcpTransportConfig c;
  c.name = std::move(name);
  c.send_policy = policy;
  return c;
}

/// An ephemeral port with nothing listening on it (bound once, then freed).
std::uint16_t dead_port() {
  Fd fd = tcp_listen(0);
  return local_port(fd.get());
}

/// "f<i>" built with append — `"f" + std::to_string(i)` trips gcc 12's
/// spurious -Wrestrict on the inlined operator+ under -Werror builds.
std::string frame_name(int i) {
  std::string s = "f";
  s += std::to_string(i);
  return s;
}

// --- EventLoop -------------------------------------------------------------

TEST(EventLoop, RunsPostedTasksOnLoopThread) {
  EventLoop loop;
  std::atomic<bool> ran{false};
  std::atomic<bool> on_loop{false};
  loop.post([&] {
    on_loop.store(loop.on_loop_thread());
    ran.store(true);
  });
  EXPECT_TRUE(eventually([&] { return ran.load(); }));
  EXPECT_TRUE(on_loop.load());
}

TEST(EventLoop, TimersFireOnceAndCancelledTimersDoNot) {
  EventLoop loop;
  std::atomic<int> fired{0};
  loop.post([&] { loop.add_timer(10, [&] { ++fired; }); });
  std::atomic<std::uint64_t> cancel_me{0};
  std::atomic<bool> armed{false};
  loop.post([&] {
    cancel_me.store(loop.add_timer(5000, [&] { fired += 100; }));
    armed.store(true);
  });
  ASSERT_TRUE(eventually([&] { return armed.load(); }));
  loop.post([&] { loop.cancel_timer(cancel_me.load()); });
  ASSERT_TRUE(eventually([&] { return fired.load() == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(fired.load(), 1);
}

TEST(EventLoop, PostAfterStopRunsInline) {
  std::atomic<bool> ran{false};
  {
    EventLoop loop;
    loop.stop();
    // The loop thread is (or is about to be) gone; the task must not be
    // stranded in a queue nobody drains.
    loop.post([&] { ran.store(true); });
  }
  EXPECT_TRUE(ran.load());
}

// --- TcpTransport: basic exchange -----------------------------------------

TEST(TcpTransport, RoundTripsFramesBothDirections) {
  EventLoop loop;
  auto server = TcpTransport::listen(&loop, 0, cfg("srv"));
  ASSERT_NE(server->local_port(), 0);
  auto client =
      TcpTransport::connect(&loop, "127.0.0.1", server->local_port(),
                            cfg("cli"));

  EXPECT_EQ(client->send("ping"), SendResult::kQueued);
  auto got = server->receive(20000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "ping");

  EXPECT_EQ(server->send("pong"), SendResult::kQueued);
  got = client->receive(20000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "pong");

  // Zero-length frames are transport heartbeats; they must not surface.
  EXPECT_TRUE(eventually([&] {
    return server->stats().heartbeats_received > 0 &&
           client->stats().heartbeats_received > 0;
  }));
  EXPECT_EQ(server->stats().frames_received, 1u);
  EXPECT_EQ(client->stats().frames_received, 1u);
}

TEST(TcpTransport, DrainPreservesArrivalOrder) {
  EventLoop loop;
  auto server = TcpTransport::listen(&loop, 0, cfg("srv"));
  auto client =
      TcpTransport::connect(&loop, "127.0.0.1", server->local_port(),
                            cfg("cli"));
  for (int i = 0; i < 50; ++i) client->send(frame_name(i));

  std::vector<std::string> got;
  ASSERT_TRUE(eventually([&] {
    for (std::string& f : server->drain()) got.push_back(std::move(f));
    return got.size() == 50u;
  }));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[i], frame_name(i));
}

TEST(TcpTransport, BlockingSendDeliversEverythingThroughSmallQueue) {
  EventLoop loop;
  auto server = TcpTransport::listen(&loop, 0, cfg("srv"));
  TcpTransportConfig c = cfg("cli", BackpressurePolicy::kBlock);
  c.max_send_queue = 4;
  auto client =
      TcpTransport::connect(&loop, "127.0.0.1", server->local_port(), c);

  const int n = 200;
  for (int i = 0; i < n; ++i)
    ASSERT_EQ(client->send(std::string(2000, 'b')), SendResult::kQueued);
  EXPECT_TRUE(eventually([&] {
    return server->stats().frames_received == static_cast<std::uint64_t>(n);
  }));
  // A 4-deep queue cannot hold 200 frames without the sender having waited.
  EXPECT_GT(client->stats().send_block_waits, 0u);
}

// --- TcpTransport: backpressure while the link is down ---------------------

TEST(TcpTransport, ShedOldestDropsHeadWhenQueueFull) {
  EventLoop loop;
  TcpTransportConfig c = cfg("cli", BackpressurePolicy::kShedOldest);
  c.max_send_queue = 3;
  auto client = TcpTransport::connect(&loop, "127.0.0.1", dead_port(), c);

  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(client->send(frame_name(i)), SendResult::kQueued);
  EXPECT_EQ(client->send("f3"), SendResult::kShed);
  EXPECT_EQ(client->send("f4"), SendResult::kShed);
  EXPECT_EQ(client->stats().send_shed, 2u);
}

TEST(TcpTransport, RejectRefusesNewFrameWhenQueueFull) {
  EventLoop loop;
  TcpTransportConfig c = cfg("cli", BackpressurePolicy::kReject);
  c.max_send_queue = 2;
  auto client = TcpTransport::connect(&loop, "127.0.0.1", dead_port(), c);

  EXPECT_EQ(client->send("a"), SendResult::kQueued);
  EXPECT_EQ(client->send("b"), SendResult::kQueued);
  EXPECT_EQ(client->send("c"), SendResult::kRejected);
  EXPECT_EQ(client->stats().send_rejected, 1u);
}

TEST(TcpTransport, SendAfterCloseReturnsClosed) {
  EventLoop loop;
  auto server = TcpTransport::listen(&loop, 0, cfg("srv"));
  auto client =
      TcpTransport::connect(&loop, "127.0.0.1", server->local_port(),
                            cfg("cli"));
  client->close();
  EXPECT_EQ(client->send("late"), SendResult::kClosed);
}

// --- TcpTransport: supervision ---------------------------------------------

TEST(TcpTransport, ReconnectsAfterForcedDisconnect) {
  EventLoop loop;
  auto server = TcpTransport::listen(&loop, 0, cfg("srv"));
  auto client =
      TcpTransport::connect(&loop, "127.0.0.1", server->local_port(),
                            cfg("cli"));
  client->send("before");
  ASSERT_TRUE(server->receive(20000).has_value());

  client->force_disconnect();
  ASSERT_TRUE(eventually([&] {
    return client->state() == LinkState::kEstablished &&
           client->stats().reconnects > 0;
  }));
  client->send("after");
  const auto got = server->receive(20000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "after");
}

TEST(TcpTransport, ServerSurvivesPeerChurn) {
  EventLoop loop;
  auto server = TcpTransport::listen(&loop, 0, cfg("srv"));
  {
    auto first =
        TcpTransport::connect(&loop, "127.0.0.1", server->local_port(),
                              cfg("cli1"));
    first->send("from first");
    ASSERT_TRUE(server->receive(20000).has_value());
    first->close();
  }
  auto second =
      TcpTransport::connect(&loop, "127.0.0.1", server->local_port(),
                            cfg("cli2"));
  second->send("from second");
  const auto got = server->receive(20000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "from second");
  EXPECT_GE(server->stats().accepts, 2u);
}

TEST(TcpTransport, SilencedPeerTriggersPeerTimeout) {
  EventLoop loop;
  // Client-side chaos drops every outbound frame, heartbeats included: the
  // server hears nothing and must declare the peer dead on its own clock.
  TcpTransportConfig c = cfg("cli");
  c.chaos.frames.drop = 1.0;
  c.chaos_seed = 11;
  auto server = TcpTransport::listen(&loop, 0, cfg("srv"));
  auto client =
      TcpTransport::connect(&loop, "127.0.0.1", server->local_port(), c);
  client->send("never arrives");
  EXPECT_TRUE(eventually([&] { return server->stats().peer_timeouts > 0; }));
  EXPECT_EQ(server->stats().frames_received, 0u);
  EXPECT_GT(client->stats().chaos_dropped, 0u);
}

// --- TcpTransport: chaos ---------------------------------------------------

TEST(TcpTransport, ChaosDuplicateDeliversFrameTwice) {
  EventLoop loop;
  TcpTransportConfig c = cfg("cli");
  c.chaos.frames.duplicate = 1.0;
  c.chaos_seed = 5;
  auto server = TcpTransport::listen(&loop, 0, cfg("srv"));
  auto client =
      TcpTransport::connect(&loop, "127.0.0.1", server->local_port(), c);
  client->send("twin");
  std::vector<std::string> got;
  ASSERT_TRUE(eventually([&] {
    for (std::string& f : server->drain()) got.push_back(std::move(f));
    return got.size() >= 2u;
  }));
  EXPECT_EQ(got[0], "twin");
  EXPECT_EQ(got[1], "twin");
  EXPECT_GT(client->stats().chaos_duplicated, 0u);
}

TEST(TcpTransport, ChaosDelayHoldsFrameButDelivers) {
  EventLoop loop;
  TcpTransportConfig c = cfg("cli");
  c.chaos.frames.delay = 1.0;
  c.chaos.delay_ms = 50;
  c.chaos_seed = 5;
  auto server = TcpTransport::listen(&loop, 0, cfg("srv"));
  auto client =
      TcpTransport::connect(&loop, "127.0.0.1", server->local_port(), c);
  client->send("held");
  const auto got = server->receive(20000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "held");
  EXPECT_GT(client->stats().chaos_delayed, 0u);
}

TEST(TcpTransport, PartitionWindowSilencesThenHeals) {
  EventLoop loop;
  TcpTransportConfig c = cfg("cli");
  // Window opens the instant the link establishes (the shim arms then).
  c.chaos.partitions.push_back({0, 700, false});
  c.chaos_seed = 13;
  auto server = TcpTransport::listen(&loop, 0, cfg("srv"));
  auto client =
      TcpTransport::connect(&loop, "127.0.0.1", server->local_port(), c);
  ASSERT_TRUE(eventually(
      [&] { return client->state() == LinkState::kEstablished; }));

  client->send("lost in the dark");
  ASSERT_TRUE(
      eventually([&] { return client->stats().chaos_partition_drops > 0; }));
  EXPECT_FALSE(server->receive(100).has_value());

  // After the window (and the peer-timeout/reconnect cycle it provokes),
  // fresh frames flow again. The dropped frame stays dropped — redelivery
  // is the application protocol's job.
  ASSERT_TRUE(eventually([&] {
    client->send("after the storm");
    return server->receive(200).has_value();
  }));
}

TEST(TcpTransport, ResetWindowForcesReconnectStorm) {
  EventLoop loop;
  TcpTransportConfig c = cfg("cli");
  c.chaos.partitions.push_back({0, 400, true});
  c.chaos_seed = 17;
  auto server = TcpTransport::listen(&loop, 0, cfg("srv"));
  auto client =
      TcpTransport::connect(&loop, "127.0.0.1", server->local_port(), c);
  EXPECT_TRUE(eventually([&] {
    return client->stats().chaos_resets > 0 && client->stats().reconnects > 0;
  }));
  // The storm passes: the link must settle back to established.
  EXPECT_TRUE(eventually(
      [&] { return client->state() == LinkState::kEstablished; }));
}

TEST(TcpTransport, ChaosCorruptionKeepsLinkAlive) {
  EventLoop loop;
  TcpTransportConfig c = cfg("cli");
  c.chaos.frames.corrupt = 1.0;
  c.chaos_seed = 23;
  auto server = TcpTransport::listen(&loop, 0, cfg("srv"));
  auto client =
      TcpTransport::connect(&loop, "127.0.0.1", server->local_port(), c);
  // Corruption mangles payloads before framing, so the framing layer stays
  // in sync and the garbage surfaces to the application (whose codecs
  // count it as a decode reject). The link itself must stay live.
  for (int i = 0; i < 50; ++i) client->send(std::string(100, 'p'));
  EXPECT_TRUE(eventually([&] { return client->stats().chaos_corrupted > 0; }));
  EXPECT_TRUE(eventually([&] {
    return client->state() == LinkState::kEstablished &&
           server->state() == LinkState::kEstablished;
  }));
}

// --- ChaosShim unit behavior ----------------------------------------------

TEST(ChaosShim, PartitionWindowsAreMeasuredFromArm) {
  fault::TransportFaultRates rates;
  rates.partitions.push_back({100, 50, false});
  ChaosShim shim(rates, 1);
  EXPECT_FALSE(shim.partitioned(10000));  // not armed yet
  shim.arm(10000);
  EXPECT_FALSE(shim.partitioned(10099));
  EXPECT_TRUE(shim.partitioned(10100));
  EXPECT_TRUE(shim.partitioned(10149));
  EXPECT_FALSE(shim.partitioned(10150));
}

TEST(ChaosShim, TakeResetFiresExactlyOncePerWindow) {
  fault::TransportFaultRates rates;
  rates.partitions.push_back({0, 100, true});
  rates.partitions.push_back({200, 100, false});
  ChaosShim shim(rates, 1);
  shim.arm(0);
  EXPECT_TRUE(shim.take_reset(10));
  EXPECT_FALSE(shim.take_reset(20));   // edge-triggered
  EXPECT_FALSE(shim.take_reset(250));  // second window is not reset-flagged
}

TEST(ChaosShim, ReorderHoldsOneFrameAndReleasesAfterSuccessor) {
  fault::TransportFaultRates rates;
  rates.reorder = 1.0;
  ChaosShim shim(rates, 42);
  TransportStats stats;
  EXPECT_TRUE(shim.on_send("first", 0, &stats).empty());
  const auto out = shim.on_send("second", 0, &stats);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].payload, "second");
  EXPECT_EQ(out[1].payload, "first");
  EXPECT_GT(stats.chaos_reordered, 0u);
}

TEST(ChaosShim, ClearHeldForgetsTheHostage) {
  fault::TransportFaultRates rates;
  rates.reorder = 1.0;
  ChaosShim shim(rates, 42);
  TransportStats stats;
  EXPECT_TRUE(shim.on_send("hostage", 0, &stats).empty());
  shim.clear_held();
  const auto out = shim.on_send("next", 0, &stats);
  // With the hold cleared, nothing rides along — but "next" may itself be
  // held again (rate 1.0); both outcomes exclude the hostage.
  for (const ChaosEmission& em : out) EXPECT_NE(em.payload, "hostage");
}

// --- InterfaceFabric and SplitTransport behind the Transport interface -----

TEST(LoopbackTransport, FabricImplementsSendDrainReceive) {
  oran::InterfaceFabric fabric("t1");
  Transport& t = fabric;
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.send("a"), SendResult::kQueued);
  EXPECT_EQ(t.send("b"), SendResult::kQueued);
  const auto all = t.drain();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "a");
  EXPECT_EQ(all[1], "b");
  EXPECT_FALSE(t.receive(0).has_value());
  t.send("c");
  const auto got = t.receive(1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "c");
}

TEST(LoopbackTransport, PartitionDropsFramesUntilHealed) {
  oran::InterfaceFabric fabric("t1");
  fabric.set_partitioned(true);
  EXPECT_FALSE(fabric.connected());
  // Like TCP, a partitioned sender still gets its frame accepted — the
  // loss only shows through silence.
  EXPECT_EQ(fabric.send("gone"), SendResult::kQueued);
  EXPECT_TRUE(fabric.drain().empty());
  EXPECT_EQ(fabric.partition_drops(), 1u);

  fabric.set_partitioned(false);
  EXPECT_TRUE(fabric.connected());
  fabric.send("through");
  const auto got = fabric.receive(0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "through");
}

TEST(LoopbackTransport, SplitTransportPairsTwoSimplexFabrics) {
  oran::InterfaceFabric north("n");  // A -> B
  oran::InterfaceFabric south("s");  // B -> A
  SplitTransport a(&north, &south, "a-side");
  SplitTransport b(&south, &north, "b-side");

  a.send("to b");
  const auto at_b = b.receive(0);
  ASSERT_TRUE(at_b.has_value());
  EXPECT_EQ(*at_b, "to b");

  b.send("to a");
  const auto at_a = a.receive(0);
  ASSERT_TRUE(at_a.has_value());
  EXPECT_EQ(*at_a, "to a");

  south.set_partitioned(true);
  EXPECT_FALSE(a.connected());
  EXPECT_FALSE(b.connected());
  EXPECT_EQ(a.name(), "a-side");
}

}  // namespace
}  // namespace edgebol::net
