#include "core/orchestrator.hpp"

#include <gtest/gtest.h>

#include "env/scenarios.hpp"

namespace edgebol::core {
namespace {

env::ControlGrid small_grid() {
  env::GridSpec spec;
  spec.levels_per_dim = 6;
  return env::ControlGrid(spec);
}

TEST(Orchestrator, RunsAndSummarizes) {
  EdgeBolConfig cfg;
  cfg.weights = {1.0, 8.0};
  cfg.constraints = {0.4, 0.5};
  EdgeBol agent(small_grid(), cfg);
  env::Testbed tb = env::make_static_testbed(35.0);

  Orchestrator orch(agent);
  const RunSummary s = orch.run(tb, 80);
  EXPECT_EQ(s.periods, 80u);
  EXPECT_GT(s.mean_cost, 0.0);
  EXPECT_LT(s.tail_mean_cost, s.mean_cost);  // it learned
  EXPECT_LT(s.violation_rate, 0.1);
  EXPECT_GT(s.final_safe_set_size, 1u);
  EXPECT_EQ(orch.history().size(), 80u);
  EXPECT_EQ(orch.history().front().period, 0);
  EXPECT_EQ(orch.history().back().period, 79);
}

TEST(Orchestrator, CallbackSeesEveryPeriod) {
  EdgeBol agent(small_grid(), EdgeBolConfig{});
  env::Testbed tb = env::make_static_testbed(35.0);
  OrchestratorOptions opts;
  opts.keep_history = false;
  Orchestrator orch(agent, opts);
  int calls = 0;
  double last_cost = 0.0;
  orch.set_callback([&](const PeriodRecord& r) {
    ++calls;
    last_cost = r.cost;
  });
  orch.run(tb, 20);
  EXPECT_EQ(calls, 20);
  EXPECT_GT(last_cost, 0.0);
  EXPECT_TRUE(orch.history().empty());  // disabled
}

TEST(Orchestrator, PeriodsContinueAcrossRuns) {
  EdgeBol agent(small_grid(), EdgeBolConfig{});
  env::Testbed tb = env::make_static_testbed(35.0);
  Orchestrator orch(agent);
  orch.run(tb, 10);
  orch.run(tb, 10);
  EXPECT_EQ(orch.history().size(), 20u);
  EXPECT_EQ(orch.history().back().period, 19);
}

TEST(Orchestrator, WorksThroughTheOranControlPlane) {
  EdgeBolConfig cfg;
  cfg.weights = {1.0, 8.0};
  cfg.constraints = {0.4, 0.5};
  EdgeBol agent(small_grid(), cfg);
  env::Testbed tb = env::make_static_testbed(35.0);
  oran::OranManagedTestbed managed(tb);
  Orchestrator orch(agent);
  const RunSummary s = orch.run(managed, 40);
  EXPECT_EQ(s.periods, 40u);
  EXPECT_EQ(managed.non_rt_ric().kpi_count(), 40u);
}

TEST(Orchestrator, ViolationAccountingUsesSlack) {
  EdgeBolConfig cfg;
  cfg.constraints = {0.0001, 0.74};  // infeasible: S0 violates every period
  EdgeBol agent(small_grid(), cfg);
  env::Testbed tb = env::make_static_testbed(35.0);
  Orchestrator orch(agent);
  const RunSummary s = orch.run(tb, 15);
  EXPECT_GT(s.violation_rate, 0.9);
  for (const PeriodRecord& r : orch.history()) {
    EXPECT_TRUE(r.delay_violated);
  }
}

}  // namespace
}  // namespace edgebol::core
