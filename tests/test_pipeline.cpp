#include "service/pipeline.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace edgebol::service {
namespace {

PipelineInputs base_inputs(std::size_t n_users = 1) {
  PipelineInputs in;
  for (std::size_t u = 0; u < n_users; ++u) {
    PipelineUser user;
    user.solo_app_rate_bps = 5e6;
    user.solo_phy_rate_bps = 50e6;
    user.spectral_eff = 3.9;
    user.eff_mcs = 20.0;
    in.users.push_back(user);
  }
  in.image_bits = 0.7e6;
  in.preprocess_s = 0.04;
  in.response_bits = 24e3;
  in.grant_latency_s = 0.012;
  in.gpu_service_s = 0.12;
  in.airtime = 1.0;
  return in;
}

TEST(Pipeline, SingleUserHasNoQueueing) {
  // A stop-and-wait loop cannot queue behind itself.
  const PipelineResult r = solve_pipeline(base_inputs(1));
  EXPECT_DOUBLE_EQ(r.queue_wait_s, 0.0);
  EXPECT_DOUBLE_EQ(r.gpu_delay_s, 0.12);
}

TEST(Pipeline, SingleUserDelayIsSumOfStages) {
  const PipelineInputs in = base_inputs(1);
  const PipelineResult r = solve_pipeline(in);
  const double expected = in.preprocess_s + in.grant_latency_s +
                          in.image_bits / in.users[0].solo_app_rate_bps +
                          in.gpu_service_s +
                          in.response_bits / in.downlink_rate_bps;
  EXPECT_NEAR(r.delay_s[0], expected, 1e-6);
}

TEST(Pipeline, FrameRateIsInverseDelay) {
  const PipelineResult r = solve_pipeline(base_inputs(1));
  EXPECT_NEAR(r.frame_rate_hz[0] * r.delay_s[0], 1.0, 1e-9);
  EXPECT_NEAR(r.total_frame_rate_hz, r.frame_rate_hz[0], 1e-12);
}

TEST(Pipeline, GpuUtilizationIsLambdaTimesService) {
  const PipelineResult r = solve_pipeline(base_inputs(1));
  EXPECT_NEAR(r.gpu_utilization, r.total_frame_rate_hz * 0.12, 1e-9);
}

TEST(Pipeline, FasterUplinkShortensDelayAndRaisesFrameRate) {
  PipelineInputs slow = base_inputs(1);
  slow.users[0].solo_app_rate_bps = 1e6;
  PipelineInputs fast = base_inputs(1);
  fast.users[0].solo_app_rate_bps = 10e6;
  const PipelineResult rs = solve_pipeline(slow);
  const PipelineResult rf = solve_pipeline(fast);
  EXPECT_GT(rs.delay_s[0], rf.delay_s[0]);
  EXPECT_LT(rs.total_frame_rate_hz, rf.total_frame_rate_hz);
}

TEST(Pipeline, MultiUserQueueingAddsWait) {
  const PipelineResult r1 = solve_pipeline(base_inputs(1));
  const PipelineResult r4 = solve_pipeline(base_inputs(4));
  EXPECT_GT(r4.queue_wait_s, 0.0);
  EXPECT_GT(r4.delay_s[0], r1.delay_s[0]);
}

TEST(Pipeline, HeterogeneousUsersWorstDelayIsTheWeakest) {
  PipelineInputs in = base_inputs(2);
  in.users[1].solo_app_rate_bps = 0.5e6;  // poor channel
  const PipelineResult r = solve_pipeline(in);
  EXPECT_GT(r.delay_s[1], r.delay_s[0]);
}

TEST(Pipeline, RadioCongestionGrowsWithUsers) {
  PipelineInputs in = base_inputs(6);
  for (auto& u : in.users) u.solo_app_rate_bps = 1.2e6;  // busier radio
  const PipelineResult r = solve_pipeline(in);
  EXPECT_GT(r.radio_congestion, 1.0);
  EXPECT_NEAR(solve_pipeline(base_inputs(1)).radio_congestion, 1.0, 1e-6);
}

TEST(Pipeline, BsDutyWithinBounds) {
  for (std::size_t n : {1u, 3u, 6u}) {
    const PipelineResult r = solve_pipeline(base_inputs(n));
    EXPECT_GE(r.bs_duty, 0.0);
    EXPECT_LE(r.bs_duty, 1.0);
  }
}

TEST(Pipeline, BackgroundLoadRaisesDuty) {
  PipelineInputs in = base_inputs(1);
  const double base_duty = solve_pipeline(in).bs_duty;
  in.bs_load_multiplier = 10.0;
  in.bulk_phy_rate_bps = 50e6;
  const double loaded_duty = solve_pipeline(in).bs_duty;
  EXPECT_GT(loaded_duty, base_duty);
  EXPECT_LE(loaded_duty, 1.0);
}

TEST(Pipeline, MeanMcsAndEffReported) {
  PipelineInputs in = base_inputs(2);
  in.users[1].eff_mcs = 10.0;
  in.users[1].spectral_eff = 2.41;
  const PipelineResult r = solve_pipeline(in);
  EXPECT_NEAR(r.mean_eff_mcs, 15.0, 1e-9);
  EXPECT_NEAR(r.mean_spectral_eff, (3.9 + 2.41) / 2.0, 1e-9);
}

TEST(Pipeline, GpuSaturationIsCapped) {
  PipelineInputs in = base_inputs(6);
  in.gpu_service_s = 10.0;  // absurdly slow GPU
  const PipelineResult r = solve_pipeline(in);
  EXPECT_LE(r.gpu_utilization, in.max_gpu_utilization + 1e-9);
  for (double d : r.delay_s) EXPECT_GT(d, 10.0);
}

TEST(Pipeline, InvalidInputsThrow) {
  PipelineInputs in = base_inputs(1);
  in.users.clear();
  EXPECT_THROW(solve_pipeline(in), std::invalid_argument);
  in = base_inputs(1);
  in.image_bits = 0.0;
  EXPECT_THROW(solve_pipeline(in), std::invalid_argument);
  in = base_inputs(1);
  in.airtime = 0.0;
  EXPECT_THROW(solve_pipeline(in), std::invalid_argument);
  in = base_inputs(1);
  in.bs_load_multiplier = 0.5;
  EXPECT_THROW(solve_pipeline(in), std::invalid_argument);
  in = base_inputs(1);
  in.users[0].solo_app_rate_bps = 0.0;
  EXPECT_THROW(solve_pipeline(in), std::invalid_argument);
}

TEST(Pipeline, FixedPointIsStableAcrossCalls) {
  const PipelineInputs in = base_inputs(3);
  const PipelineResult a = solve_pipeline(in);
  const PipelineResult b = solve_pipeline(in);
  for (std::size_t u = 0; u < 3; ++u) {
    EXPECT_DOUBLE_EQ(a.delay_s[u], b.delay_s[u]);
  }
}

}  // namespace
}  // namespace edgebol::service
