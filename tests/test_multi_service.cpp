#include "env/multi_service.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/stats.hpp"
#include "core/multi_service_bol.hpp"
#include "env/scenarios.hpp"

namespace edgebol::env {
namespace {

ControlPolicy half_airtime_policy() {
  ControlPolicy p;
  p.airtime = 0.5;
  return p;
}

TEST(MultiService, ContextsArePerSlice) {
  MultiServiceTestbed tb = make_two_service_testbed(2, 30.0, 3, 18.0);
  EXPECT_EQ(tb.num_users(0), 2u);
  EXPECT_EQ(tb.num_users(1), 3u);
  const Context a = tb.context(0);
  const Context b = tb.context(1);
  EXPECT_DOUBLE_EQ(a.n_users, 2.0);
  EXPECT_DOUBLE_EQ(b.n_users, 3.0);
  EXPECT_GT(a.cqi_mean, b.cqi_mean);  // 30 dB beats 18 dB
  EXPECT_EQ(tb.joint_context_features().size(), 6u);
}

TEST(MultiService, AirtimeCouplingEnforced) {
  MultiServiceTestbed tb = make_two_service_testbed(1, 30.0, 1, 30.0);
  ControlPolicy a, b;
  a.airtime = 0.7;
  b.airtime = 0.7;
  EXPECT_THROW(tb.step(a, b), std::invalid_argument);
  b.airtime = 0.3;
  EXPECT_NO_THROW(tb.step(a, b));
}

TEST(MultiService, SharedGpuCouplesDelays) {
  MultiServiceTestbed tb = make_two_service_testbed(3, 30.0, 3, 30.0);
  ControlPolicy fast = half_airtime_policy();
  // Service B busy vs idle-ish: compare A's delay when B floods the GPU
  // (low-res = high frame rate and longer inference) vs when B is light.
  ControlPolicy b_light = half_airtime_policy();
  b_light.resolution = 1.0;
  ControlPolicy b_heavy = half_airtime_policy();
  b_heavy.resolution = 0.25;
  b_heavy.gpu_speed = 0.0;

  const MultiMeasurement light = tb.expected(fast, b_light);
  const MultiMeasurement heavy = tb.expected(fast, b_heavy);
  EXPECT_GT(heavy.service[0].delay_s, light.service[0].delay_s);
  EXPECT_GT(heavy.service[0].gpu_delay_s, light.service[0].gpu_delay_s);
}

TEST(MultiService, SharedPowersAreSingleFigures) {
  MultiServiceTestbed tb = make_two_service_testbed(1, 30.0, 1, 30.0);
  const MultiMeasurement m =
      tb.expected(half_airtime_policy(), half_airtime_policy());
  EXPECT_DOUBLE_EQ(m.service[0].server_power_w, m.server_power_w);
  EXPECT_DOUBLE_EQ(m.service[1].bs_power_w, m.bs_power_w);
  EXPECT_GT(m.server_power_w, 70.0);
  EXPECT_GT(m.bs_power_w, 4.5);
}

TEST(MultiService, TwoServicesDrawMorePowerThanOne) {
  TestbedConfig cfg;
  MultiServiceTestbed two = make_two_service_testbed(1, 30.0, 1, 30.0, cfg);
  Testbed one = make_static_testbed(30.0, cfg);
  ControlPolicy p = half_airtime_policy();
  const double two_power =
      two.expected(p, p).server_power_w;
  const double one_power = one.expected(p).server_power_w;
  EXPECT_GT(two_power, one_power);
}

TEST(MultiService, ExpectedIsDeterministicStepIsNoisy) {
  MultiServiceTestbed tb = make_two_service_testbed(1, 30.0, 1, 25.0);
  const ControlPolicy p = half_airtime_policy();
  const MultiMeasurement a = tb.expected(p, p);
  const MultiMeasurement b = tb.expected(p, p);
  EXPECT_DOUBLE_EQ(a.service[0].delay_s, b.service[0].delay_s);
  RunningStats delays;
  for (int i = 0; i < 50; ++i) delays.add(tb.step(p, p).service[0].delay_s);
  EXPECT_GT(delays.stddev(), 0.0);
  EXPECT_NEAR(delays.mean(), a.service[0].delay_s,
              0.2 * a.service[0].delay_s);
}

TEST(MultiService, EmptySliceThrows) {
  EXPECT_THROW(MultiServiceTestbed(TestbedConfig{}, {}, {}),
               std::invalid_argument);
}

TEST(JointEdgeBol, CandidateSetRespectsCoupling) {
  core::JointBolConfig cfg;
  cfg.levels_per_dim = 3;
  core::JointEdgeBol agent(cfg);
  EXPECT_GT(agent.num_candidates(), 1000u);
  for (std::size_t i = 0; i < agent.num_candidates(); i += 17) {
    const core::JointPolicyPair& p = agent.pair(i);
    EXPECT_LE(p.a.airtime + p.b.airtime, 1.0 + 1e-9);
  }
  EXPECT_THROW(agent.pair(agent.num_candidates()), std::out_of_range);
}

TEST(JointEdgeBol, FirstDecisionIsSymmetricMaxPerformance) {
  core::JointBolConfig cfg;
  cfg.levels_per_dim = 3;
  core::JointEdgeBol agent(cfg);
  MultiServiceTestbed tb = make_two_service_testbed(1, 30.0, 1, 30.0);
  const core::JointDecision d = agent.select(tb.joint_context_features());
  EXPECT_TRUE(d.fell_back_to_s0);
  EXPECT_DOUBLE_EQ(d.policy.a.resolution, 1.0);
  EXPECT_DOUBLE_EQ(d.policy.b.resolution, 1.0);
  EXPECT_DOUBLE_EQ(d.policy.a.airtime, d.policy.b.airtime);
  EXPECT_EQ(d.policy.a.mcs_cap, 20);
}

TEST(JointEdgeBol, LearnsOnTheCoupledSystem) {
  core::JointBolConfig cfg;
  cfg.levels_per_dim = 3;
  cfg.weights = {1.0, 8.0};
  cfg.constraints_a = {0.8, 0.5};
  cfg.constraints_b = {0.8, 0.5};
  core::JointEdgeBol agent(cfg);
  MultiServiceTestbed tb = make_two_service_testbed(1, 32.0, 1, 30.0);

  RunningStats head, tail;
  for (int t = 0; t < 120; ++t) {
    const linalg::Vector ctx = tb.joint_context_features();
    const core::JointDecision d = agent.select(ctx);
    const MultiMeasurement m = tb.step(d.policy.a, d.policy.b);
    agent.update(ctx, d.index, m);
    const double u = cfg.weights.cost(m.server_power_w, m.bs_power_w);
    if (t < 5) head.add(u);
    if (t >= 90) tail.add(u);
  }
  EXPECT_LT(tail.mean(), head.mean());
}

TEST(JointEdgeBol, Validation) {
  core::JointBolConfig cfg;
  cfg.levels_per_dim = 1;
  EXPECT_THROW(core::JointEdgeBol{cfg}, std::invalid_argument);
  cfg = core::JointBolConfig{};
  cfg.airtime_min = 0.0;
  EXPECT_THROW(core::JointEdgeBol{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace edgebol::env
