// Cross-validation of the fluid pipeline model against the discrete-event
// per-subframe simulator — the strongest evidence that the cheap model the
// learning experiments rely on reflects the mechanics it abstracts.

#include "env/event_sim.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "env/scenarios.hpp"

namespace edgebol::env {
namespace {

ControlPolicy make_policy(double res, double air, double gpu, int mcs) {
  ControlPolicy p;
  p.resolution = res;
  p.airtime = air;
  p.gpu_speed = gpu;
  p.mcs_cap = mcs;
  return p;
}

EventSimResult run_events(const std::vector<double>& snrs,
                          const ControlPolicy& p) {
  TestbedConfig cfg;
  EventSimConfig sim;
  sim.duration_s = 60.0;
  sim.warmup_s = 10.0;
  return simulate_events(cfg, snrs, p, sim);
}

Measurement fluid(const std::vector<double>& snrs, const ControlPolicy& p) {
  TestbedConfig cfg;
  std::vector<ran::UeChannel> users;
  for (double s : snrs) {
    users.emplace_back(std::make_unique<ran::ConstantSnr>(s), 0.0, 0.5);
  }
  Testbed tb(cfg, std::move(users));
  return tb.expected(p);
}

TEST(EventSim, SingleUserDelayMatchesFluidModelClosely) {
  // With one user there is no contention and no queueing: both models are
  // exact up to tick quantization.
  for (const ControlPolicy& p :
       {make_policy(1.0, 1.0, 1.0, 20), make_policy(0.5, 1.0, 0.5, 20),
        make_policy(1.0, 0.4, 1.0, 16), make_policy(0.25, 0.2, 0.0, 12)}) {
    const EventSimResult ev = run_events({35.0}, p);
    const Measurement fl = fluid({35.0}, p);
    ASSERT_GT(ev.frames_completed[0], 10.0);
    EXPECT_NEAR(ev.mean_delay_s[0], fl.delay_s, 0.05 * fl.delay_s + 0.004)
        << "res " << p.resolution << " air " << p.airtime;
    EXPECT_NEAR(ev.total_frame_rate_hz, fl.total_frame_rate_hz,
                0.06 * fl.total_frame_rate_hz + 0.05);
  }
}

TEST(EventSim, SingleUserDutyAndUtilizationMatchFluidModel) {
  const ControlPolicy p = make_policy(1.0, 1.0, 1.0, 20);
  const EventSimResult ev = run_events({35.0}, p);
  const Measurement fl = fluid({35.0}, p);
  EXPECT_NEAR(ev.gpu_busy_fraction, fl.gpu_utilization,
              0.08 * fl.gpu_utilization + 0.01);
  EXPECT_NEAR(ev.bs_busy_fraction, fl.bs_duty, 0.1 * fl.bs_duty + 0.01);
}

TEST(EventSim, MultiUserAggregatesMatchFluidModelApproximately) {
  // With contention the fluid model is an approximation. The observed
  // fidelity envelope: worst-case delay within ~20%; throughput and GPU
  // utilization within ~25% — the M/D/1 wait is conservative when the GPU
  // saturates (a pipelined GPU serves back-to-back, which the fluid model
  // under-credits). The safe-set machinery only needs the conservative
  // direction.
  const std::vector<double> snrs{32.0, 27.0, 22.0};
  for (const ControlPolicy& p :
       {make_policy(1.0, 1.0, 1.0, 20), make_policy(0.62, 0.6, 0.5, 18)}) {
    const EventSimResult ev = run_events(snrs, p);
    const Measurement fl = fluid(snrs, p);
    double worst_ev = 0.0;
    for (double d : ev.mean_delay_s) worst_ev = std::max(worst_ev, d);
    EXPECT_NEAR(worst_ev, fl.delay_s, 0.20 * fl.delay_s + 0.01);
    EXPECT_NEAR(ev.total_frame_rate_hz, fl.total_frame_rate_hz,
                0.25 * fl.total_frame_rate_hz + 0.1);
    EXPECT_NEAR(ev.gpu_busy_fraction, fl.gpu_utilization,
                0.25 * fl.gpu_utilization + 0.02);
    // Fluid throughput errs on the conservative (lower) side.
    EXPECT_LE(fl.total_frame_rate_hz, ev.total_frame_rate_hz + 0.2);
  }
}

TEST(EventSim, QueueingAppearsOnlyWithContention) {
  const ControlPolicy p = make_policy(0.25, 1.0, 0.2, 20);
  const EventSimResult solo = run_events({35.0}, p);
  const EventSimResult crowd = run_events({35.0, 35.0, 35.0, 35.0}, p);
  EXPECT_LT(solo.mean_gpu_wait_s, 0.005);
  EXPECT_GT(crowd.mean_gpu_wait_s, solo.mean_gpu_wait_s);
  EXPECT_GT(crowd.mean_queue_len, solo.mean_queue_len);
}

TEST(EventSim, AirtimeGovernsBsBusyFraction) {
  const EventSimResult lo =
      run_events({35.0}, make_policy(1.0, 0.2, 1.0, 20));
  const EventSimResult hi =
      run_events({35.0}, make_policy(1.0, 1.0, 1.0, 20));
  EXPECT_LE(lo.bs_busy_fraction, 0.2 + 1e-6);
  EXPECT_GT(hi.bs_busy_fraction, lo.bs_busy_fraction);
}

TEST(EventSim, WeakChannelDragsTheSliceDown) {
  // Two stop-and-wait users TDM-synchronize into a common cycle, so the
  // per-user split can equalize; the slice-level effect of a weak channel
  // is unambiguous though: longer cycles, fewer frames overall.
  const ControlPolicy p = make_policy(1.0, 1.0, 1.0, 20);
  const EventSimResult strong = run_events({35.0, 35.0}, p);
  const EventSimResult mixed = run_events({35.0, 8.0}, p);
  EXPECT_LT(mixed.total_frame_rate_hz, strong.total_frame_rate_hz);
  double strong_worst = 0.0, mixed_worst = 0.0;
  for (double d : strong.mean_delay_s) strong_worst = std::max(strong_worst, d);
  for (double d : mixed.mean_delay_s) mixed_worst = std::max(mixed_worst, d);
  EXPECT_GT(mixed_worst, strong_worst);
}

TEST(EventSim, Validation) {
  TestbedConfig cfg;
  EXPECT_THROW(simulate_events(cfg, {}, ControlPolicy{}, {}),
               std::invalid_argument);
  EventSimConfig bad;
  bad.duration_s = 1.0;
  bad.warmup_s = 2.0;
  EXPECT_THROW(simulate_events(cfg, {30.0}, ControlPolicy{}, bad),
               std::invalid_argument);
  ControlPolicy p;
  p.airtime = 0.0;
  EXPECT_THROW(simulate_events(cfg, {30.0}, p, {}), std::invalid_argument);
}

}  // namespace
}  // namespace edgebol::env
