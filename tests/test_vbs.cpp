#include "ran/vbs.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "ran/cqi.hpp"

namespace edgebol::ran {
namespace {

TEST(Vbs, DefaultPolicyIsPermissive) {
  Vbs vbs;
  EXPECT_DOUBLE_EQ(vbs.policy().airtime, 1.0);
  EXPECT_EQ(vbs.policy().mcs_cap, kMaxUlMcs);
}

TEST(Vbs, ObserveUeRunsLinkAdaptationChain) {
  Vbs vbs;
  vbs.set_policy({1.0, kMaxUlMcs});
  const UeRadioReport r = vbs.observe_ue(35.0, 1);
  EXPECT_EQ(r.cqi, 15);
  EXPECT_EQ(r.eff_mcs, kMaxUlMcs);
  EXPECT_NEAR(r.phy_rate_bps, peak_rate_bps(kMaxUlMcs, kPrbs20MHz), 1.0);
  EXPECT_NEAR(r.app_rate_bps,
              r.phy_rate_bps * vbs.config().protocol_efficiency, 1.0);
}

TEST(Vbs, McsPolicyCapApplies) {
  Vbs vbs;
  vbs.set_policy({1.0, 6});
  EXPECT_EQ(vbs.observe_ue(35.0, 1).eff_mcs, 6);
}

TEST(Vbs, PoorChannelLimitsMcsBelowPolicy) {
  Vbs vbs;
  vbs.set_policy({1.0, kMaxUlMcs});
  const UeRadioReport r = vbs.observe_ue(0.0, 1);
  EXPECT_LT(r.eff_mcs, kMaxUlMcs);
  EXPECT_EQ(r.eff_mcs, cqi_to_max_mcs(snr_to_cqi(0.0)));
}

TEST(Vbs, AirtimeAndSharingScaleRates) {
  Vbs vbs;
  vbs.set_policy({0.5, kMaxUlMcs});
  const double half = vbs.observe_ue(35.0, 1).app_rate_bps;
  vbs.set_policy({1.0, kMaxUlMcs});
  const double full = vbs.observe_ue(35.0, 1).app_rate_bps;
  const double shared = vbs.observe_ue(35.0, 2).app_rate_bps;
  EXPECT_NEAR(half, full / 2.0, 1.0);
  EXPECT_NEAR(shared, full / 2.0, 1.0);
}

TEST(Vbs, PowerDelegatesToModel) {
  Vbs vbs;
  EXPECT_DOUBLE_EQ(vbs.mean_power_w(0.5, 2.0),
                   vbs.power_model().mean_power_w(0.5, 2.0));
}

TEST(Vbs, InvalidPolicyThrows) {
  Vbs vbs;
  EXPECT_THROW(vbs.set_policy({0.0, 10}), std::invalid_argument);
  EXPECT_THROW(vbs.set_policy({1.2, 10}), std::invalid_argument);
  EXPECT_THROW(vbs.set_policy({0.5, -1}), std::invalid_argument);
  EXPECT_THROW(vbs.set_policy({0.5, kMaxUlMcs + 1}), std::invalid_argument);
}

TEST(Vbs, InvalidConfigThrows) {
  VbsConfig bad;
  bad.nprb = 0;
  EXPECT_THROW(Vbs{bad}, std::invalid_argument);
  bad = VbsConfig{};
  bad.protocol_efficiency = 0.0;
  EXPECT_THROW(Vbs{bad}, std::invalid_argument);
  bad = VbsConfig{};
  bad.grant_latency_s = -0.1;
  EXPECT_THROW(Vbs{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace edgebol::ran
