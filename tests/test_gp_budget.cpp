// Observation-budget guarantees of the GP engine:
//
//  1. Eviction is EXACT — after any remove_observation (downdate, no
//     refactorization) the posterior over the tracked grid matches a fresh
//     regressor built from just the retained observations.
//  2. The budget is a hard bound — budgeted runs never hold more than B
//     observations, and kOldest retains exactly the newest B inputs.
//  3. Parallelism never changes results — budgeted tracked caches and
//     EdgeBol decision trajectories are bit-identical for thread counts
//     {1, 2, 8}, eviction downdates included.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/edgebol.hpp"
#include "env/scenarios.hpp"
#include "gp/gp_regressor.hpp"
#include "gp/kernel.hpp"

namespace edgebol {
namespace {

using linalg::Vector;

std::unique_ptr<gp::Kernel> make_kernel() {
  return std::make_unique<gp::Matern32Kernel>(Vector(7, 1.1), 0.9);
}

std::vector<Vector> draw_points(std::size_t n, Rng& rng) {
  std::vector<Vector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector z(7);
    for (double& v : z) v = rng.uniform();
    out.push_back(std::move(z));
  }
  return out;
}

std::shared_ptr<const linalg::Matrix> pack(const std::vector<Vector>& pts) {
  linalg::Matrix m;
  m.reserve_rows(pts.size(), 7);
  for (const Vector& p : pts) m.append_row(p);
  return std::make_shared<const linalg::Matrix>(std::move(m));
}

// Fresh regressor conditioned on exactly gp's retained observations; its
// tracked posterior is the ground truth the downdated cache must match.
void expect_matches_fresh(const gp::GpRegressor& gp,
                          const std::vector<Vector>& cands, double tol) {
  gp::GpRegressor fresh(make_kernel(), gp.noise_variance());
  for (std::size_t i = 0; i < gp.num_observations(); ++i) {
    fresh.add(gp.inputs()[i], gp.targets()[i]);
  }
  fresh.track_candidates(pack(cands));
  for (std::size_t j = 0; j < cands.size(); ++j) {
    EXPECT_NEAR(gp.tracked_mean(j), fresh.tracked_mean(j), tol) << "j=" << j;
    EXPECT_NEAR(gp.tracked_variance(j), fresh.tracked_variance(j), tol)
        << "j=" << j;
  }
}

// ---------------------------------------------------------------------------
// remove_observation at the edges and the middle, tracked == fresh.
// ---------------------------------------------------------------------------

TEST(GpBudget, RemoveObservationMatchesFresh) {
  Rng rng(101);
  const auto cands = draw_points(40, rng);
  const auto zs = draw_points(14, rng);
  for (std::size_t victim : {std::size_t{0}, std::size_t{7}, std::size_t{13}}) {
    gp::GpRegressor gp(make_kernel(), 2e-3);
    Rng yrng(55);
    for (const Vector& z : zs) gp.add(z, yrng.normal());
    gp.track_candidates(pack(cands));
    gp.remove_observation(victim);
    ASSERT_EQ(gp.num_observations(), zs.size() - 1);
    EXPECT_EQ(gp.evictions(), 1u);
    expect_matches_fresh(gp, cands, 1e-8);
    // predict() shares the downdated factor with the tracked cache.
    const gp::Prediction p = gp.predict(cands[0]);
    EXPECT_NEAR(p.mean, gp.tracked_mean(0), 1e-9);
    EXPECT_NEAR(p.variance, gp.tracked_variance(0), 1e-9);
  }
}

TEST(GpBudget, RemoveObservationOutOfRangeThrows) {
  gp::GpRegressor gp(make_kernel(), 1e-3);
  EXPECT_THROW(gp.remove_observation(0), std::invalid_argument);
  Rng rng(3);
  const auto zs = draw_points(3, rng);
  for (const Vector& z : zs) gp.add(z, 0.5);
  EXPECT_THROW(gp.remove_observation(3), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Budget enforcement: hard bound, sliding-window retention, exactness for
// both policies under interleaved adds.
// ---------------------------------------------------------------------------

TEST(GpBudget, OldestPolicyKeepsSlidingWindow) {
  Rng rng(202);
  const std::size_t budget = 9;
  const auto zs = draw_points(25, rng);
  gp::GpRegressor gp(make_kernel(), 2e-3);
  gp.set_observation_budget(budget);  // kOldest default
  Rng yrng(77);
  for (std::size_t i = 0; i < zs.size(); ++i) {
    gp.add(zs[i], yrng.normal());
    EXPECT_LE(gp.num_observations(), budget);
  }
  ASSERT_EQ(gp.num_observations(), budget);
  EXPECT_EQ(gp.evictions(), zs.size() - budget);
  // Exactly the newest `budget` inputs, in arrival order.
  for (std::size_t i = 0; i < budget; ++i) {
    EXPECT_EQ(gp.inputs()[i], zs[zs.size() - budget + i]);
  }
}

TEST(GpBudget, SetBudgetTrimsImmediately) {
  Rng rng(203);
  const auto cands = draw_points(25, rng);
  const auto zs = draw_points(12, rng);
  gp::GpRegressor gp(make_kernel(), 2e-3);
  Rng yrng(5);
  for (const Vector& z : zs) gp.add(z, yrng.normal());
  gp.track_candidates(pack(cands));
  gp.set_observation_budget(7, gp::EvictionPolicy::kMinLeverage);
  EXPECT_EQ(gp.num_observations(), 7u);
  EXPECT_EQ(gp.evictions(), 5u);
  expect_matches_fresh(gp, cands, 1e-8);
}

void run_budgeted_property(gp::EvictionPolicy policy,
                           std::shared_ptr<common::ThreadPool> pool) {
  Rng rng(404);
  const auto cands = draw_points(50, rng);
  const auto zs = draw_points(30, rng);
  gp::GpRegressor gp(make_kernel(), 2e-3);
  gp.set_thread_pool(pool);
  gp.set_observation_budget(11, policy);
  gp.track_candidates(pack(cands));
  Rng yrng(88);
  for (std::size_t i = 0; i < zs.size(); ++i) {
    gp.add(zs[i], yrng.normal());
    EXPECT_LE(gp.num_observations(), 11u);
  }
  expect_matches_fresh(gp, cands, 1e-8);
}

TEST(GpBudget, BudgetedPosteriorMatchesFreshOldest) {
  run_budgeted_property(gp::EvictionPolicy::kOldest, nullptr);
}

TEST(GpBudget, BudgetedPosteriorMatchesFreshMinLeverage) {
  run_budgeted_property(gp::EvictionPolicy::kMinLeverage, nullptr);
}

TEST(GpBudget, BudgetedPosteriorMatchesFreshPooled) {
  const auto pool = std::make_shared<common::ThreadPool>(4);
  run_budgeted_property(gp::EvictionPolicy::kOldest, pool);
  run_budgeted_property(gp::EvictionPolicy::kMinLeverage, pool);
}

// ---------------------------------------------------------------------------
// Bit-identity across thread counts {1, 2, 8}, downdates included.
// ---------------------------------------------------------------------------

TEST(GpBudget, BudgetedCacheBitIdenticalAcrossPools) {
  for (const gp::EvictionPolicy policy :
       {gp::EvictionPolicy::kOldest, gp::EvictionPolicy::kMinLeverage}) {
    std::vector<std::vector<double>> means, vars;
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      Rng rng(909);
      gp::GpRegressor gp(make_kernel(), 1e-3);
      if (threads > 1) {
        gp.set_thread_pool(std::make_shared<common::ThreadPool>(threads));
      }
      gp.set_observation_budget(10, policy);
      const auto cands = draw_points(70, rng);
      const auto zs = draw_points(26, rng);
      gp.track_candidates(pack(cands));
      Rng yrng(66);
      for (const Vector& z : zs) gp.add(z, yrng.normal());
      std::vector<double> m(cands.size()), v(cands.size());
      for (std::size_t j = 0; j < cands.size(); ++j) {
        m[j] = gp.tracked_mean(j);
        v[j] = gp.tracked_variance(j);
      }
      means.push_back(std::move(m));
      vars.push_back(std::move(v));
    }
    EXPECT_EQ(means[0], means[1]);  // exact, not approximate
    EXPECT_EQ(means[0], means[2]);
    EXPECT_EQ(vars[0], vars[1]);
    EXPECT_EQ(vars[0], vars[2]);
  }
}

struct Trajectory {
  std::vector<std::size_t> picks;
  std::vector<std::size_t> safe_sizes;
  std::vector<std::size_t> obs_counts;
  std::vector<double> kpis;

  bool operator==(const Trajectory&) const = default;
};

Trajectory run_budgeted_trajectory(std::size_t num_threads,
                                   gp::EvictionPolicy policy) {
  env::GridSpec spec;
  spec.levels_per_dim = 4;  // 256 candidates keeps the test quick
  core::EdgeBolConfig cfg;
  cfg.num_threads = num_threads;
  cfg.gp_budget = 12;
  cfg.gp_eviction = policy;
  core::EdgeBol agent(env::ControlGrid(spec), cfg);
  env::Testbed tb = env::make_static_testbed(35.0);

  const env::Context ctx_a{2.0, 12.0, 3.0};
  const env::Context ctx_b{6.0, 9.0, 8.0};

  Trajectory tr;
  for (int t = 0; t < 30; ++t) {
    const env::Context& c = (t / 5) % 2 == 0 ? ctx_a : ctx_b;
    const core::Decision d = agent.select(c);
    const env::Measurement m = tb.step(d.policy);
    agent.update(c, d.policy_index, m);
    EXPECT_LE(agent.num_observations(), cfg.gp_budget);
    tr.picks.push_back(d.policy_index);
    tr.safe_sizes.push_back(d.safe_set_size);
    tr.obs_counts.push_back(agent.num_observations());
    tr.kpis.push_back(m.delay_s);
    tr.kpis.push_back(m.map);
    tr.kpis.push_back(m.server_power_w);
    tr.kpis.push_back(m.bs_power_w);
  }
  return tr;
}

TEST(GpBudget, EdgeBolBudgetedTrajectoryBitIdenticalAcrossThreadCounts) {
  for (const gp::EvictionPolicy policy :
       {gp::EvictionPolicy::kOldest, gp::EvictionPolicy::kMinLeverage}) {
    const Trajectory t1 = run_budgeted_trajectory(1, policy);
    const Trajectory t2 = run_budgeted_trajectory(2, policy);
    const Trajectory t8 = run_budgeted_trajectory(8, policy);
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(t1, t8);
  }
}

}  // namespace
}  // namespace edgebol
