// lint-as: src/telemetry/report.cpp
// R3 known-bad: std::cout in library code under src/.
#include <iostream>

void dump(int value) {
  std::cout << value << "\n";  // lint-expect: telemetry
}

const char* cout_doc() {
  return "std::cout is banned in src/";  // string: silent
}
