// lint-as: src/linalg/pool.cpp
// R2 known-good: src/linalg (like src/common) owns raw allocation.
struct Slab {
  explicit Slab(int n);
};

Slab* acquire() {
  return new Slab(64);
}

void release(Slab* s) {
  delete s;
}
