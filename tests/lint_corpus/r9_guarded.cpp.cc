// lint-as: src/cache/shard.cpp
// R9 cpp half: accesses under a LockGuard or inside the EB_REQUIRES
// definition are fine; a bare touch is flagged; `// unguarded-ok:` waives
// a deliberate racy read.
#include "cache/shard.hpp"

int Shard::size() const {
  edgebol::common::LockGuard lock(mu_);
  return count_;
}

void Shard::drain() {  // EB_REQUIRES(mu_) in the header
  items_.clear();
  count_ = 0;
}

void Shard::prime() {
  count_ = 1;  // lint-expect: guarded
  items_.push_back(count_);  // lint-expect: guarded
}

int Shard::peek_racy() const {
  return count_;  // unguarded-ok: monitoring read; staleness tolerated
}
