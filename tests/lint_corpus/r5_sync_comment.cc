// lint-as: src/fleet/sweep.cpp
// R5: ThreadPool dispatches in src/ need a sharing-discipline comment
// (double-slash, the word sync, a colon) within the 10 lines above the
// call. Bad case first — and this header deliberately avoids spelling
// the marker — so nothing leaks into the bad call's window.
#include <vector>

#include "common/thread_pool.hpp"

void fan_out_undocumented(edgebol::common::ThreadPool& pool,
                          std::vector<int>& out) {
  pool.parallel_for(0, 8, [&](int i) { out[i] = i; });  // lint-expect: sync
}

void fan_out_documented(edgebol::common::ThreadPool& pool,
                        std::vector<int>& out) {
  // sync: disjoint writes — each worker owns out[i]; joined before read.
  pool.parallel_for(0, 8, [&](int i) { out[i] = i; });
}
