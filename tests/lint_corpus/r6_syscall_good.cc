// lint-as: src/net/socket.cpp
// R6 known-good: inside src/net/socket.*, blocking-capable syscalls are
// allowed when the EINTR story is stated nearby; non-blocking setup calls
// need no story at all.
#include <sys/socket.h>
#include <sys/uio.h>

long read_batch(int fd, const iovec* iov, int cnt) {
  for (;;) {
    const long n = ::readv(fd, iov, cnt);
    if (n >= 0) return n;
    if (errno == EINTR) continue;  // retry: interrupted before transfer
    return -1;
  }
}

int enable_nodelay(int fd, const void* one, unsigned len) {
  return ::setsockopt(fd, 6, 1, one, len);
}
