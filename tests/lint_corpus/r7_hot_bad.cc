// lint-as: src/engine/sweep_hot.cpp
// R7 known-bad: heap-allocating constructs inside a named hot region.
#include <vector>

struct Grid {
  int n = 0;
  std::vector<int> buf;
};

void sweep(Grid& g) {
  // hot: decide
  for (int i = 0; i < g.n; ++i) {
    g.buf.push_back(i);  // lint-expect: hot
  }
  // hot: end
}

void setup(Grid& g) {
  g.buf.reserve(128);  // outside any region: silent
}
