// lint-as: src/cache/shard.hpp
// R9 header half of the component pair: declares guarded members (one
// wrapped across lines — the name line is a declaration, not an access)
// and an EB_REQUIRES method the cpp half defines.
#pragma once

#include <vector>

#include "common/sync.hpp"

class Shard {
 public:
  int size() const;
  void drain() EB_REQUIRES(mu_);
  void prime();
  int peek_racy() const;

  int unguarded_in_header() const {
    return count_;  // lint-expect: guarded
  }

  int guarded_in_header() const {
    edgebol::common::LockGuard lock(mu_);
    return count_;
  }

 private:
  mutable edgebol::common::Mutex mu_{"Shard::mu_"};
  int count_ EB_GUARDED_BY(mu_) = 0;
  std::vector<int> items_
      EB_GUARDED_BY(mu_);  // wrapped declaration: silent on both lines
};
