// lint-as: bench/report_main.cpp
// R3 known-good: stream output is fine outside src/ (bench, examples,
// tests, tools).
#include <iostream>

int main() {
  std::cout << "p99_ms=0.42\n";
  return 0;
}
