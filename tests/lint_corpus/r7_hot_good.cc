// lint-as: src/engine/sweep_ok.cpp
// R7 known-good: a hot region over fixed storage, allocation hoisted to
// setup; allocation tokens in comments/strings inside the region are
// silent.
#include <array>

struct Flat {
  std::array<double, 64> slots{};
  int used = 0;
};

void configure(Flat& f) {
  f.used = 64;  // all storage is inline; nothing to reserve
}

double accumulate(const Flat& f) {
  double total = 0.0;
  // hot: decide
  for (int i = 0; i < f.used; ++i) {
    // push_back would be a violation here; this comment is not.
    total += f.slots[static_cast<unsigned>(i)];
  }
  // hot: end
  return total;
}
