// lint-as: src/net/mux_wire.cpp
// R6 known-bad: ::-qualified socket syscalls outside src/net/socket.*.
#include <sys/socket.h>

int open_direct(int fd, const sockaddr* addr, unsigned len) {
  return ::connect(fd, addr, len);  // lint-expect: syscall
}

int wait_direct(int epfd, epoll_event* evs, int n) {
  return ::epoll_wait(epfd, evs, n, -1);  // lint-expect: syscall
}
