// lint-as: src/net/socket_poll.cpp
// R6 known-bad (inside src/net/socket.*): a blocking-capable syscall with
// no interruption story stated within 8 lines either way.
#include <poll.h>

int wait_readable(pollfd* fds, int n, int timeout_ms) {
  return ::poll(fds, n, timeout_ms);  // lint-expect: syscall
}
