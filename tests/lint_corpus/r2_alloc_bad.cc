// lint-as: src/service/buffer.cpp
// R2 known-bad: raw new/delete outside linalg/common. `= delete`d special
// members and identifiers containing "new" must stay silent.
struct Blob {
  explicit Blob(int n);
};

Blob* leaky() {
  return new Blob(3);  // lint-expect: alloc
}

void drop(Blob* b) {
  delete b;  // lint-expect: alloc
}

struct NoCopy {
  NoCopy(const NoCopy&) = delete;  // special member: silent
  NoCopy& operator=(const NoCopy&) = delete;
};

int renew_lease(int renewals) {  // "renew" is not "new"
  return renewals + 1;
}
