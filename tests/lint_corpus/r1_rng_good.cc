// lint-as: src/common/rng.cpp
// R1 known-good: src/common/rng.* is the one place libc randomness may
// appear (the project RNG wraps and seeds it deterministically).
#include <cstdlib>
#include <random>

unsigned hardware_seed() {
  std::random_device rd;
  return rd();
}

int legacy_draw() {
  std::srand(7);
  return std::rand();
}
