// lint-as: src/ric/session.cpp
// R8 known-bad: raw standard sync primitives outside src/common/sync.* —
// lockdep and the clang annotations only see acquisitions that ride the
// wrappers.
#include <condition_variable>
#include <mutex>

class Session {
 public:
  void touch() {
    std::lock_guard<std::mutex> lock(mu_);  // lint-expect: rawsync
    ++hits_;
    cv_.notify_one();
  }

  void drain() {
    std::unique_lock<std::mutex> lock(mu_);  // lint-expect: rawsync
    cv_.wait(lock, [this] { return hits_ == 0; });
  }

 private:
  std::mutex mu_;  // lint-expect: rawsync
  std::condition_variable cv_;  // lint-expect: rawsync
  int hits_ = 0;
};
