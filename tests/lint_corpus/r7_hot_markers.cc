// lint-as: src/engine/markers.cpp
// R7 marker bookkeeping: nested opens, stray ends, and an unclosed
// region are themselves violations.
struct S {
  int x = 0;
};

void nested(S& s) {
  // hot: decide
  s.x += 1;
  // hot: dispatch  (opens inside decide)  lint-expect: hot
  s.x += 2;
  // hot: end
}

void stray(S& s) {
  s.x += 3;
  // hot: end  (nothing open)  lint-expect: hot
}

void unclosed(S& s) {  // region left open to end of file
  // hot: decide  (never closed)  lint-expect: hot
  s.x += 4;
}
