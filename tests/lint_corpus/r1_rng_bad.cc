// lint-as: src/sim/noise.cpp
// R1 known-bad: libc randomness outside src/common/rng.*. Mentions inside
// comments and string literals must stay silent.
#include <cstdlib>
#include <random>

int bad_seed() {
  std::srand(42);  // lint-expect: rng
  return std::rand();  // lint-expect: rng
}

int bad_entropy() {
  std::random_device rd;  // lint-expect: rng
  return static_cast<int>(rd());
}

const char* rng_doc() {
  return "std::rand and random_device are banned here";  // string: silent
}
