// lint-as: src/common/sync.cpp
// R8 known-good: src/common/sync.* owns the raw primitives (the wrapper
// implementation and the lockdep registry mutex live here).
#include <mutex>

namespace edgebol::common {

std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace edgebol::common
