// lint-as: src/wire/codec.cpp
// Tokenizer fixture: every banned token below lives in a literal or a
// comment — except one real std::cout that FOLLOWS a digit-separated
// integer literal. A lexer that mistakes 1'000'000 for char literals
// swallows the rest of the file and misses it (the old stripper did).
#include <cstdint>
#include <iostream>

const char* kBanner =
    "std::cout << new Banner(std::rand())";  // in a string: silent

const char* kEscaped = "quote \" then std::mutex stays quoted";

const char* kQuery = R"sql(
  SELECT ::connect(::poll) FROM std::mutex -- std::cout
)sql";

const wchar_t* kWide = L"delete this std::condition_variable";

// std::rand in a line comment is silent, and a block comment
/* holding ::epoll_wait(std::cout) and new Foo() is silent too. */

std::uint64_t scaled() {
  constexpr std::uint64_t kWindow = 1'000'000;  // separators, not chars
  const char kSep = '\'';  // escaped quote in a char literal
  std::cout << kWindow << kSep;  // lint-expect: telemetry
  return kWindow / 1'000;
}
