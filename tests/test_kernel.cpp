#include "gp/kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "linalg/cholesky.hpp"

namespace edgebol::gp {
namespace {

TEST(Kernel, AnisotropicDistanceMatchesEq5) {
  // d = sqrt(((1-0)/2)^2 + ((2-0)/4)^2) = sqrt(0.25 + 0.25).
  EXPECT_NEAR(anisotropic_distance({1.0, 2.0}, {0.0, 0.0}, {2.0, 4.0}),
              std::sqrt(0.5), 1e-12);
}

TEST(Kernel, DistanceSizeMismatchThrows) {
  EXPECT_THROW(anisotropic_distance({1.0}, {0.0, 0.0}, {1.0, 1.0}),
               std::invalid_argument);
}

TEST(Matern32, SelfCovarianceIsAmplitude) {
  const Matern32Kernel k({1.0, 1.0}, 0.7);
  EXPECT_DOUBLE_EQ(k({0.3, -0.2}, {0.3, -0.2}), 0.7);
  EXPECT_DOUBLE_EQ(k.prior_variance(), 0.7);
}

TEST(Matern32, MatchesEq6ClosedForm) {
  const Matern32Kernel k({1.0}, 1.0);
  const double d = 0.8;
  const double expected =
      (1.0 + std::sqrt(3.0) * d) * std::exp(-std::sqrt(3.0) * d);
  EXPECT_NEAR(k({0.0}, {d}), expected, 1e-12);
}

TEST(Matern32, SymmetricAndDecaying) {
  const Matern32Kernel k({0.5, 2.0}, 1.0);
  const linalg::Vector a{0.1, 0.2}, b{0.7, -0.3};
  EXPECT_DOUBLE_EQ(k(a, b), k(b, a));
  EXPECT_GT(k(a, a), k(a, b));
  EXPECT_GT(k(a, b), 0.0);
}

TEST(Matern32, StationarityUnderTranslation) {
  const Matern32Kernel k({0.7, 1.3}, 1.0);
  const double shift = 2.5;
  EXPECT_NEAR(k({0.1, 0.4}, {0.6, -0.2}),
              k({0.1 + shift, 0.4 + shift}, {0.6 + shift, -0.2 + shift}),
              1e-12);
}

TEST(Matern32, AnisotropyNotRotationInvariant) {
  const Matern32Kernel k({0.2, 2.0}, 1.0);
  // Same Euclidean distance, different directions.
  const double along_fast = k({0.0, 0.0}, {0.5, 0.0});  // short length-scale
  const double along_slow = k({0.0, 0.0}, {0.0, 0.5});  // long length-scale
  EXPECT_LT(along_fast, along_slow);
}

TEST(Matern32, GramMatrixIsPositiveDefinite) {
  Rng rng(3);
  const Matern32Kernel k({0.5, 0.8, 1.2}, 1.0);
  std::vector<linalg::Vector> pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
  }
  linalg::Matrix gram(pts.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      gram(i, j) = k(pts[i], pts[j]);
    }
  }
  // Tiny jitter mirrors the noise term of eq. (3)-(4).
  for (std::size_t i = 0; i < pts.size(); ++i) gram(i, i) += 1e-10;
  EXPECT_NO_THROW(linalg::CholeskyFactor{gram});
}

TEST(Rbf, ClosedFormAndBounds) {
  const RbfKernel k({1.0}, 2.0);
  EXPECT_DOUBLE_EQ(k({0.0}, {0.0}), 2.0);
  EXPECT_NEAR(k({0.0}, {1.0}), 2.0 * std::exp(-0.5), 1e-12);
  EXPECT_GT(k({0.0}, {5.0}), 0.0);
}

TEST(Rbf, DecaysFasterThanMaternFarAway) {
  const RbfKernel rbf({1.0}, 1.0);
  const Matern32Kernel mat({1.0}, 1.0);
  EXPECT_LT(rbf({0.0}, {3.0}), mat({0.0}, {3.0}));
}

TEST(Kernel, InvalidParametersThrow) {
  EXPECT_THROW(Matern32Kernel({}, 1.0), std::invalid_argument);
  EXPECT_THROW(Matern32Kernel({0.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(Matern32Kernel({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(RbfKernel({-1.0}, 1.0), std::invalid_argument);
}

TEST(Kernel, CloneIsIndependentCopy) {
  const Matern32Kernel k({0.5}, 1.5);
  const auto c = k.clone();
  EXPECT_DOUBLE_EQ((*c)({0.2}, {0.4}), k({0.2}, {0.4}));
  EXPECT_EQ(c->dims(), 1u);
}

}  // namespace
}  // namespace edgebol::gp
