#include "ran/channel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "common/stats.hpp"

namespace edgebol::ran {
namespace {

TEST(ConstantSnr, AlwaysReturnsMean) {
  ConstantSnr s(25.0);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(s.next_mean_snr_db(), 25.0);
  EXPECT_DOUBLE_EQ(s.current_mean_snr_db(), 25.0);
}

TEST(TraceSnr, CyclesThroughTrace) {
  TraceSnr s({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.current_mean_snr_db(), 1.0);
  EXPECT_DOUBLE_EQ(s.next_mean_snr_db(), 1.0);
  EXPECT_DOUBLE_EQ(s.next_mean_snr_db(), 2.0);
  EXPECT_DOUBLE_EQ(s.next_mean_snr_db(), 3.0);
  EXPECT_DOUBLE_EQ(s.next_mean_snr_db(), 1.0);  // wraps
}

TEST(TraceSnr, EmptyTraceThrows) {
  EXPECT_THROW(TraceSnr({}), std::invalid_argument);
}

TEST(TraceSnr, CloneContinuesIndependently) {
  TraceSnr s({1.0, 2.0});
  s.next_mean_snr_db();
  const auto c = s.clone();
  EXPECT_DOUBLE_EQ(c->current_mean_snr_db(), s.current_mean_snr_db());
  s.next_mean_snr_db();
  EXPECT_NE(c->current_mean_snr_db(), s.current_mean_snr_db());
}

TEST(SteppedTrace, CoversRangeAndHold) {
  const auto trace = stepped_snr_trace(5.0, 38.0, 6, 4);
  EXPECT_EQ(trace.size(), (6u + 4u) * 4u);  // up levels + interior down
  EXPECT_DOUBLE_EQ(*std::max_element(trace.begin(), trace.end()), 38.0);
  EXPECT_DOUBLE_EQ(*std::min_element(trace.begin(), trace.end()), 5.0);
  // First level held for `hold` periods.
  EXPECT_DOUBLE_EQ(trace[0], trace[3]);
}

TEST(SteppedTrace, InvalidArgsThrow) {
  EXPECT_THROW(stepped_snr_trace(5.0, 38.0, 1, 4), std::invalid_argument);
  EXPECT_THROW(stepped_snr_trace(5.0, 38.0, 6, 0), std::invalid_argument);
}

TEST(ShadowFading, StationaryStdMatchesSigma) {
  Rng rng(3);
  ShadowFading f(2.0, 0.7);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(f.next_offset_db(rng));
  EXPECT_NEAR(stats.mean(), 0.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.15);
}

TEST(ShadowFading, ZeroSigmaIsSilent) {
  Rng rng(5);
  ShadowFading f(0.0, 0.5);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(f.next_offset_db(rng), 0.0);
}

TEST(ShadowFading, CorrelationIncreasesWithRho) {
  auto lag1_corr = [](double rho) {
    Rng rng(7);
    ShadowFading f(1.0, rho);
    double prev = f.next_offset_db(rng);
    double num = 0.0, den = 0.0;
    for (int i = 0; i < 20000; ++i) {
      const double cur = f.next_offset_db(rng);
      num += prev * cur;
      den += prev * prev;
      prev = cur;
    }
    return num / den;
  };
  EXPECT_NEAR(lag1_corr(0.9), 0.9, 0.05);
  EXPECT_NEAR(lag1_corr(0.0), 0.0, 0.05);
}

TEST(ShadowFading, InvalidParamsThrow) {
  EXPECT_THROW(ShadowFading(-1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(ShadowFading(1.0, 1.0), std::invalid_argument);
}

TEST(UeChannel, SnrAroundMeanProcess) {
  Rng rng(11);
  UeChannel ue(std::make_unique<ConstantSnr>(20.0), 1.0, 0.5);
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) stats.add(ue.next_snr_db(rng));
  EXPECT_NEAR(stats.mean(), 20.0, 0.2);
  EXPECT_DOUBLE_EQ(ue.expected_snr_db(), 20.0);
}

TEST(UeChannel, CopySemantics) {
  UeChannel a(std::make_unique<ConstantSnr>(10.0), 0.0, 0.5);
  UeChannel b = a;
  Rng rng(13);
  EXPECT_DOUBLE_EQ(b.next_snr_db(rng), 10.0);
  b = a;
  EXPECT_DOUBLE_EQ(b.expected_snr_db(), 10.0);
}

TEST(UeChannel, NullProcessThrows) {
  EXPECT_THROW(UeChannel(nullptr, 1.0, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace edgebol::ran
