// Fig. 5 — BS (BBU) power consumption vs. radio policies for images with
// different resolutions. One panel per airtime in {20%, 50%, 100%}; the
// x-axis is the mean MCS actually scheduled under each MCS-cap policy.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace edgebol;

  banner(std::cout, "Fig. 5: BS power vs mean MCS per airtime & resolution");
  env::Testbed tb = env::make_static_testbed(35.0);

  for (double airtime : {0.2, 0.5, 1.0}) {
    std::cout << "\n-- panel: airtime = " << fmt(100 * airtime, 0) << "% --\n";
    Table t({"resolution_pct", "mcs_cap", "mean_mcs", "bs_power_W"});
    for (double res : {0.25, 0.50, 0.75, 1.00}) {
      for (int mcs = 0; mcs <= ran::kMaxUlMcs; mcs += 4) {
        env::ControlPolicy p;
        p.resolution = res;
        p.airtime = airtime;
        p.mcs_cap = mcs;
        const env::Measurement e = tb.expected(p);
        t.add_row({fmt(100 * res, 0), fmt(mcs, 0), fmt(e.mean_mcs, 1),
                   fmt(e.bs_power_w, 3)});
      }
    }
    t.print(std::cout);
  }

  std::cout << "\nShape check (paper): lower-res -> lower BS power; higher "
               "airtime -> higher power (more frames/s); higher MCS -> "
               "*lower* power at this low load (load drains faster).\n";
  return 0;
}
