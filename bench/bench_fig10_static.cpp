// Fig. 10 — Static scenarios: converged BS power, server power and
// normalized cost as a function of delta2 for three constraint settings,
// compared against the offline exhaustive-search oracle (the paper's dashed
// lines). delta1 = 1 mu/W throughout; the normalized cost is computed
// independently per delta2 (relative to the per-delta2 maximum-performance
// cost) so values are comparable across delta2.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace edgebol;
  using namespace edgebol::bench;

  const int periods = 180;
  const int reps = argc > 1 ? std::max(1, std::atoi(argv[1])) : 3;

  banner(std::cout,
         "Fig. 10: converged powers & normalized cost vs delta2 (+oracle)");
  std::cout << "(" << reps << " repetitions; converged = mean of last 50 "
            << "periods; oracle via exhaustive search)\n";

  const env::ControlGrid grid;

  for (const ConstraintSetting& setting : fig10_constraint_settings()) {
    std::cout << "\n-- constraints: " << setting.label << " --\n";
    Table t({"delta2", "bs_power_W", "server_power_W", "cost", "norm_cost",
             "oracle_cost", "oracle_norm_cost", "gap_pct"});

    for (double delta2 : fig10_delta2_values()) {
      const core::CostWeights w{1.0, delta2};

      // Reference for normalization: the max-performance corner's cost.
      env::Testbed ref = env::make_static_testbed(35.0);
      const env::Measurement corner =
          ref.expected(grid.policy(grid.max_performance_index()));
      const double corner_cost =
          w.cost(corner.server_power_w, corner.bs_power_w);

      RunningStats bs, srv, cost;
      for (int rep = 0; rep < reps; ++rep) {
        env::TestbedConfig tcfg;
        tcfg.seed = 2000 + static_cast<std::uint64_t>(rep);
        env::Testbed tb = env::make_static_testbed(35.0, tcfg);
        core::EdgeBolConfig cfg;
        cfg.weights = w;
        cfg.constraints = setting.spec;
        core::EdgeBol agent(grid, cfg);
        const Trajectory tr = run_edgebol(tb, agent, periods);
        bs.add(tail_mean(tr.bs_power_w, 50));
        srv.add(tail_mean(tr.server_power_w, 50));
        cost.add(tail_mean(tr.cost, 50));
      }

      env::Testbed oracle_tb = env::make_static_testbed(35.0);
      const auto oracle =
          baselines::exhaustive_oracle(oracle_tb, grid, w, setting.spec);

      t.add_row({fmt(delta2, 0), fmt(bs.mean(), 2), fmt(srv.mean(), 1),
                 fmt(cost.mean(), 1), fmt(cost.mean() / corner_cost, 3),
                 fmt(oracle.cost, 1), fmt(oracle.cost / corner_cost, 3),
                 fmt(100.0 * (cost.mean() / oracle.cost - 1.0), 1)});
    }
    t.print(std::cout);
  }

  std::cout << "\nShape check (paper): higher delta2 shifts consumption from "
               "the BS to the server; EdgeBOL tracks the oracle closely; "
               "stringent constraints pay the highest normalized cost and "
               "the gap across settings shrinks as delta2 grows.\n";
  return 0;
}
