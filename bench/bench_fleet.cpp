// Fleet-scale engine benchmark: batched decision dispatch over 1000+ cells.
//
// Three phases, each its own fleet:
//   * throughput — FleetSim with `--cells` heterogeneous cells (SNR and user
//     count drawn per cell), FleetEngine with `--threads` workers. Runs the
//     event loop for `--periods` periods per cell and reports aggregate
//     decision throughput (decisions per second of dispatch wall time), the
//     per-cell select() latency distribution (p50/p99 over every decision),
//     update throughput, and peak RSS.
//   * identity — a smaller fleet decided twice from identical initial state:
//     batched on the full pool vs the serial in-order loop
//     (serial_dispatch). Counts decisions whose chosen policy differs; the
//     contract (see core::FleetEngine) is ZERO for any thread/shard count.
//   * transfer — donors run alone for a warmup, then one cell joins twice
//     from identical state: cold (template config) vs warm
//     (add_cell_warm: blended hyperparameters + imported
//     pseudo-observations from the K nearest donors). Reports how many
//     periods each joiner needs to reach the cold run's converged trailing
//     mean cost, and the warm/cold ratio of those counts.
//
// Emits BENCH_fleet.json with a top-level "metrics" object for
// scripts/perf_gate.py --ceiling. Throughput is gated inverted
// (us_per_decision_agg = 1e6 / decisions-per-sec) and the cell-count floor
// as a shortfall (cells_shortfall = max(0, 1000 - cells)) so every gated
// metric stays lower-is-better.
//
// Usage: bench_fleet [--smoke] [--cells N] [--threads N] [--periods N]
//                    [--out PATH]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/fleet_engine.hpp"
#include "env/fleet_sim.hpp"

namespace {

using namespace edgebol;

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

double proc_status_mb(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key, 0) == 0) {
      std::istringstream ls(line.substr(std::strlen(key) + 1));
      double kb = 0.0;
      ls >> kb;
      return kb / 1024.0;
    }
  }
  return 0.0;
}

struct Config {
  bool smoke = false;
  bool throughput_only = false;  // scaling-table runs: skip identity/transfer
  std::size_t cells = 1000;
  std::size_t threads = 8;
  std::size_t periods = 12;  // per cell, throughput phase
  std::string out = "BENCH_fleet.json";
};

// Per-cell learner template shared by all phases: a mid-size operating
// point (5^4 grid, budget 64) where thousands of cells fit in one process
// (per-cell GP caches are a few hundred KB, vs tens of MB at the full 11^4
// grid) but one decision still costs enough that batching matters.
core::EdgeBolConfig cell_template() {
  core::EdgeBolConfig cfg;
  cfg.weights = {1.0, 8.0};
  cfg.constraints = {0.4, 0.5};
  cfg.gp_budget = 64;
  return cfg;
}

env::ControlGrid small_grid() {
  env::GridSpec spec;
  spec.levels_per_dim = 5;  // 625 candidates
  return env::ControlGrid{spec};
}

// Scratch spans for one event-loop batch.
struct BatchScratch {
  std::vector<env::Context> ctx;
  std::vector<core::Decision> dec;
  std::vector<env::ControlPolicy> pol;
  std::vector<env::Measurement> meas;
  void fit(std::size_t n) {
    if (ctx.size() < n) {
      ctx.resize(n);
      dec.resize(n);
      pol.resize(n);
      meas.resize(n);
    }
  }
};

struct ThroughputResult {
  std::size_t decisions = 0;
  double decide_wall_ms = 0.0;  // sum of decide_batch wall times
  double update_wall_ms = 0.0;
  double total_wall_ms = 0.0;
  double p50_ms = 0.0;  // per-cell select latency
  double p99_ms = 0.0;
  double peak_rss_mb = 0.0;
  double dps() const { return 1e3 * static_cast<double>(decisions) /
                              decide_wall_ms; }
};

ThroughputResult run_throughput(const Config& cfg) {
  env::FleetScenario sc;
  sc.num_cells = cfg.cells;
  sc.seed = 7;
  // Coarse event quantum: jittered ~1 s periods snap to a few distinct
  // tick-aligned values, so hundreds of cells coincide per batch. At the
  // default 10 ms tick, batches carry only ~1% of the fleet and dispatch
  // overhead swamps the µs-scale per-cell decisions.
  sc.tick_s = 0.25;
  env::FleetSim sim(sc);

  core::FleetEngineConfig ec;
  ec.num_threads = cfg.threads;
  ec.cell = cell_template();
  core::FleetEngine engine(small_grid(), ec);
  for (std::size_t i = 0; i < cfg.cells; ++i) engine.add_cell();

  const std::size_t target = cfg.cells * cfg.periods;
  BatchScratch s;
  std::vector<double> lat;
  lat.reserve(target + cfg.cells);
  ThroughputResult res;
  const double t_start = now_ms();
  while (res.decisions < target) {
    const auto due = sim.next_due();
    const std::size_t n = due.size();
    s.fit(n);
    sim.due_contexts({s.ctx.data(), n});
    const double t0 = now_ms();
    engine.decide_batch(due, {s.ctx.data(), n}, {s.dec.data(), n});
    res.decide_wall_ms += now_ms() - t0;
    for (std::size_t i = 0; i < n; ++i) s.pol[i] = s.dec[i].policy;
    sim.step_due({s.pol.data(), n}, {s.meas.data(), n}, engine.pool());
    const double t1 = now_ms();
    engine.update_batch(due, {s.ctx.data(), n}, {s.dec.data(), n},
                        {s.meas.data(), n});
    res.update_wall_ms += now_ms() - t1;
    const auto ms = engine.last_decide_ms();
    lat.insert(lat.end(), ms.begin(), ms.end());
    res.decisions += n;
  }
  res.total_wall_ms = now_ms() - t_start;
  res.p50_ms = percentile(lat, 50.0);
  res.p99_ms = percentile(lat, 99.0);
  res.peak_rss_mb = proc_status_mb("VmHWM:");
  return res;
}

// Decide+update a fleet for `periods` per cell, returning every chosen
// policy index in batch order. Both calls see identical sims (same seed)
// and identically-constructed engines; only the dispatch mode differs.
std::vector<std::size_t> run_identity(std::size_t cells, std::size_t periods,
                                      std::size_t threads, bool serial) {
  env::FleetScenario sc;
  sc.num_cells = cells;
  sc.seed = 11;
  env::FleetSim sim(sc);

  core::FleetEngineConfig ec;
  ec.num_threads = threads;
  ec.serial_dispatch = serial;
  ec.cell = cell_template();
  core::FleetEngine engine(small_grid(), ec);
  for (std::size_t i = 0; i < cells; ++i) engine.add_cell();

  std::vector<std::size_t> chosen;
  chosen.reserve(cells * periods + cells);
  BatchScratch s;
  std::size_t decisions = 0;
  while (decisions < cells * periods) {
    const auto due = sim.next_due();
    const std::size_t n = due.size();
    s.fit(n);
    sim.due_contexts({s.ctx.data(), n});
    engine.decide_batch(due, {s.ctx.data(), n}, {s.dec.data(), n});
    for (std::size_t i = 0; i < n; ++i) {
      s.pol[i] = s.dec[i].policy;
      chosen.push_back(s.dec[i].policy_index);
    }
    // Testbeds also step serially in the reference run: the full loop, not
    // just the learner, must be dispatch-invariant.
    sim.step_due({s.pol.data(), n}, {s.meas.data(), n},
                 serial ? nullptr : engine.pool());
    engine.update_batch(due, {s.ctx.data(), n}, {s.dec.data(), n},
                        {s.meas.data(), n});
    decisions += n;
  }
  return chosen;
}

struct TransferResult {
  std::size_t t_cold = 0;  // periods to reach the converged band, cold
  std::size_t t_warm = 0;
  double ratio = 1.0;      // t_warm / t_cold
  double cold_final = 0.0; // cold run's trailing mean cost (the target band)
  std::size_t donors = 0;  // donors actually consulted by add_cell_warm
  std::vector<double> cold_cost;  // joiner trajectories, for the report
  std::vector<double> warm_cost;
};

// Transfer-phase operating point: the full 11^4 grid, where a cold start
// must expand the safe set over tens of periods before it can reach the
// cheap region (fig. 9's convergence regime) — the regime transfer is for.
// The delay bound is lax: fleet cells are multi-user with heterogeneous
// SNR, so their corner delay sits higher than the single-user static
// testbed's and a tight bound would pin S0 forever.
core::EdgeBolConfig transfer_template() {
  core::EdgeBolConfig cfg;
  cfg.weights = {1.0, 8.0};
  cfg.constraints = {0.5, 0.4};
  cfg.gp_budget = 64;
  return cfg;
}

// Drive one fleet to `warmup` periods per donor, join one cell (cold or
// warm), then record the joiner's per-period cost for `horizon` periods.
std::vector<double> run_joiner(std::size_t donors, std::size_t warmup,
                               std::size_t horizon, bool warm,
                               std::size_t* donors_used) {
  env::FleetScenario sc;
  sc.num_cells = donors;
  sc.seed = 23;
  // A narrow cell population: every cell is a 2-user cell in a moderate SNR
  // band, so the donors actually resemble the joiner (the setting transfer
  // targets) and the corner stays delay-feasible on every draw.
  sc.users_min = 2;
  sc.users_max = 2;
  sc.snr_lo_db = 28.0;
  sc.snr_hi_db = 36.0;
  env::FleetSim sim(sc);

  core::FleetEngineConfig ec;
  ec.num_threads = 4;
  ec.cell = transfer_template();
  core::FleetEngine engine(env::ControlGrid{}, ec);  // full 11^4 grid
  for (std::size_t i = 0; i < donors; ++i) engine.add_cell();

  BatchScratch s;
  std::size_t warm_decisions = 0;
  while (warm_decisions < donors * warmup) {
    const auto due = sim.next_due();
    const std::size_t n = due.size();
    s.fit(n);
    sim.due_contexts({s.ctx.data(), n});
    engine.decide_batch(due, {s.ctx.data(), n}, {s.dec.data(), n});
    for (std::size_t i = 0; i < n; ++i) s.pol[i] = s.dec[i].policy;
    sim.step_due({s.pol.data(), n}, {s.meas.data(), n}, engine.pool());
    engine.update_batch(due, {s.ctx.data(), n}, {s.dec.data(), n},
                        {s.meas.data(), n});
    warm_decisions += n;
  }

  // The joiner: same FleetSim id in both runs, so its environment stream is
  // identical (derive_stream) — only the learner's starting state differs.
  const std::size_t new_id = sim.add_cell();
  std::size_t engine_id;
  if (warm) {
    engine_id = engine.add_cell_warm(sim.testbed(new_id).context());
    if (donors_used != nullptr) *donors_used =
        engine.last_transfer_donors().size();
  } else {
    engine_id = engine.add_cell();
    if (donors_used != nullptr) *donors_used = 0;
  }
  if (engine_id != new_id) std::abort();  // ids advance in lockstep

  std::vector<double> joiner_cost;
  joiner_cost.reserve(horizon);
  while (joiner_cost.size() < horizon) {
    const auto due = sim.next_due();
    const std::size_t n = due.size();
    s.fit(n);
    sim.due_contexts({s.ctx.data(), n});
    engine.decide_batch(due, {s.ctx.data(), n}, {s.dec.data(), n});
    for (std::size_t i = 0; i < n; ++i) s.pol[i] = s.dec[i].policy;
    sim.step_due({s.pol.data(), n}, {s.meas.data(), n}, engine.pool());
    engine.update_batch(due, {s.ctx.data(), n}, {s.dec.data(), n},
                        {s.meas.data(), n});
    for (std::size_t i = 0; i < n; ++i) {
      if (due[i] == new_id) {
        joiner_cost.push_back(engine.cell(new_id).weights().cost(
            s.meas[i].server_power_w, s.meas[i].bs_power_w));
      }
    }
  }
  return joiner_cost;
}

// First period whose trailing-`window` mean cost is within 5% of `target`
// (horizon if never reached — a loud failure, not a silent pass).
std::size_t converge_time(const std::vector<double>& cost, std::size_t window,
                          double target) {
  for (std::size_t t = window; t <= cost.size(); ++t) {
    double s = 0.0;
    for (std::size_t i = t - window; i < t; ++i) s += cost[i];
    if (s / static_cast<double>(window) <= 1.05 * target) return t;
  }
  return cost.size();
}

TransferResult run_transfer() {
  constexpr std::size_t kDonors = 10;
  constexpr std::size_t kWarmup = 40;
  constexpr std::size_t kHorizon = 150;
  constexpr std::size_t kWindow = 5;

  TransferResult res;
  res.cold_cost =
      run_joiner(kDonors, kWarmup, kHorizon, /*warm=*/false, nullptr);
  res.warm_cost =
      run_joiner(kDonors, kWarmup, kHorizon, /*warm=*/true, &res.donors);

  res.cold_final = bench::tail_mean(res.cold_cost, kWindow);
  res.t_cold = converge_time(res.cold_cost, kWindow, res.cold_final);
  res.t_warm = converge_time(res.warm_cost, kWindow, res.cold_final);
  res.ratio = static_cast<double>(res.t_warm) /
              static_cast<double>(std::max<std::size_t>(1, res.t_cold));
  return res;
}

void write_json(const Config& cfg, const ThroughputResult& tp,
                std::size_t mismatches, std::size_t identity_decisions,
                const TransferResult& tr) {
  std::ofstream os(cfg.out);
  os.precision(6);
  os << "{\n  \"bench\": \"fleet\",\n";
  os << "  \"cells\": " << cfg.cells << ",\n";
  os << "  \"threads\": " << cfg.threads << ",\n";
  os << "  \"periods\": " << cfg.periods << ",\n";
  os << "  \"decisions\": " << tp.decisions << ",\n";
  os << "  \"decisions_per_sec\": " << tp.dps() << ",\n";
  os << "  \"update_wall_ms\": " << tp.update_wall_ms << ",\n";
  os << "  \"total_wall_ms\": " << tp.total_wall_ms << ",\n";
  os << "  \"peak_rss_mb\": " << tp.peak_rss_mb << ",\n";
  os << "  \"identity_decisions\": " << identity_decisions << ",\n";
  os << "  \"transfer\": {\"t_cold\": " << tr.t_cold << ", \"t_warm\": "
     << tr.t_warm << ", \"donors\": " << tr.donors
     << ", \"cold_final_cost\": " << tr.cold_final << ",\n";
  const auto dump = [&os](const char* name, const std::vector<double>& xs) {
    os << "    \"" << name << "\": [";
    for (std::size_t i = 0; i < xs.size(); ++i)
      os << (i ? ", " : "") << xs[i];
    os << "]";
  };
  dump("cold_cost", tr.cold_cost);
  os << ",\n";
  dump("warm_cost", tr.warm_cost);
  os << "\n  },\n";
  os << "  \"metrics\": {\n";
  os << "    \"cells_shortfall\": "
     << (cfg.cells < 1000 ? 1000 - cfg.cells : 0) << ",\n";
  os << "    \"us_per_decision_agg\": " << 1e6 / tp.dps() << ",\n";
  os << "    \"decide_p50_ms\": " << tp.p50_ms << ",\n";
  os << "    \"decide_p99_ms\": " << tp.p99_ms << ",\n";
  os << "    \"identity_mismatches\": " << mismatches << ",\n";
  os << "    \"warm_cold_ratio\": " << tr.ratio << "\n";
  os << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (std::strcmp(argv[i], "--throughput-only") == 0) {
      cfg.throughput_only = true;
    } else if (std::strcmp(argv[i], "--cells") == 0 && i + 1 < argc) {
      cfg.cells = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      cfg.threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--periods") == 0 && i + 1 < argc) {
      cfg.periods = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      cfg.out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--cells N] [--threads N]"
                   " [--periods N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (cfg.smoke) cfg.periods = std::min<std::size_t>(cfg.periods, 6);

  // Never oversubscribe: N workers sharing fewer cores preempt each other
  // mid-select, which corrupts the per-cell wall-time percentiles without
  // measuring anything a real deployment would do.
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t requested = cfg.threads;
  cfg.threads = std::min(cfg.threads, hw);

  banner(std::cout, "Fleet engine: batched dispatch at scale");
  std::printf("(%zu cells, %zu threads (%zu requested, %zu hardware), "
              "%zu periods/cell)\n\n",
              cfg.cells, cfg.threads, requested, hw, cfg.periods);

  const ThroughputResult tp = run_throughput(cfg);
  std::printf("throughput: %zu decisions in %.0f ms dispatch wall "
              "(%.0f decisions/sec aggregate)\n",
              tp.decisions, tp.decide_wall_ms, tp.dps());
  std::printf("per-cell select latency: p50 %.4f ms, p99 %.4f ms\n",
              tp.p50_ms, tp.p99_ms);
  std::printf("update wall %.0f ms, loop total %.0f ms, peak rss %.1f MB\n\n",
              tp.update_wall_ms, tp.total_wall_ms, tp.peak_rss_mb);

  if (cfg.throughput_only) {
    std::printf("(identity and transfer phases skipped)\n");
    return 0;
  }

  const std::size_t id_cells = 48, id_periods = 20, id_threads = 8;
  const std::vector<std::size_t> batched =
      run_identity(id_cells, id_periods, id_threads, /*serial=*/false);
  const std::vector<std::size_t> serial =
      run_identity(id_cells, id_periods, id_threads, /*serial=*/true);
  std::size_t mismatches = batched.size() == serial.size() ? 0 : 1;
  if (mismatches == 0) {
    for (std::size_t i = 0; i < batched.size(); ++i)
      mismatches += batched[i] != serial[i];
  }
  std::printf("identity: %zu decisions batched-vs-serial, %zu mismatches\n\n",
              batched.size(), mismatches);

  const TransferResult tr = run_transfer();
  std::printf("transfer: cold converges in %zu periods, warm in %zu "
              "(ratio %.2f, %zu donors, target cost %.3f)\n",
              tr.t_cold, tr.t_warm, tr.ratio, tr.donors, tr.cold_final);

  write_json(cfg, tp, mismatches, batched.size(), tr);
  std::printf("\nwrote %s\n", cfg.out.c_str());
  return 0;
}
