// Chaos convergence: the EdgeBOL loop with the resilience layer on, run
// through the O-RAN control plane twice — once fault-free and once under a
// seeded FaultPlan (frame loss/delay/duplication/corruption on every hop,
// blanked and spiked telemetry, and a mid-run GPU thermal-throttle event).
// Prints both regret/violation trajectories plus the injector's and the
// agent's resilience tallies. The paper's loop assumes clean feedback; this
// bench quantifies how little the hardened loop loses under realistic
// hostility (usage: bench_chaos_convergence [periods]).

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace edgebol;

struct ChaosTrace {
  std::vector<double> cost;          // NaN when the period's KPI was lost
  std::vector<int> violations;       // cumulative, with the noise slack
  core::RunSummary summary{};
  core::ResilienceStats resilience{};
  std::size_t delivery_failures = 0;
  std::size_t kpi_losses = 0;
};

ChaosTrace run(fault::FaultInjector* injector, int periods) {
  env::Testbed tb = env::make_static_testbed(35.0);
  oran::OranManagedTestbed managed(tb);
  if (injector != nullptr) managed.enable_fault_injection(injector);

  core::EdgeBolConfig cfg;
  cfg.weights = {1.0, 8.0};
  cfg.constraints = {0.4, 0.5};
  cfg.resilience.enabled = true;
  core::EdgeBol agent(env::ControlGrid{}, cfg);

  ChaosTrace trace;
  int violations = 0;
  core::Orchestrator orch(agent, {.keep_history = false});
  orch.set_callback([&](const core::PeriodRecord& rec) {
    violations += rec.delay_violated || rec.map_violated;
    trace.cost.push_back(rec.cost);
    trace.violations.push_back(violations);
  });
  trace.summary = orch.run(managed, periods);
  trace.resilience = agent.resilience_stats();
  trace.delivery_failures = managed.policy_delivery_failures();
  trace.kpi_losses = managed.kpi_losses();
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edgebol;
  using namespace edgebol::bench;

  const int periods = argc > 1 ? std::max(10, std::atoi(argv[1])) : 300;

  fault::FaultPlan plan;
  plan.seed = 77;
  plan.a1 = {0.10, 0.02, 0.02, 0.03};
  plan.e2 = {0.10, 0.03, 0.03, 0.04};
  plan.o1 = {0.10, 0.03, 0.03, 0.04};
  plan.telemetry.power_blank = 0.08;
  plan.telemetry.power_spike = 0.04;
  plan.telemetry.map_dropout = 0.05;
  plan.telemetry.delay_dropout = 0.05;
  plan.events.push_back(
      {fault::EnvEventKind::kGpuThermalThrottle, periods / 2, 15, 0.6});

  banner(std::cout, "Chaos convergence: faults off vs on (same agent config)");
  std::cout << "(" << periods << " periods; >=10% frame loss on every hop, "
            << "KPI dropout, GPU throttle at t=" << periods / 2 << ")\n\n";

  const ChaosTrace clean = run(nullptr, periods);
  fault::FaultInjector injector(plan);
  const ChaosTrace faulted = run(&injector, periods);

  Table t({"t", "cost_clean", "cost_faulted", "cumviol_clean",
           "cumviol_faulted"});
  for (int i : {0, 2, 5, 10, 15, 20, 25, 35, 50, 75, 100, 150, 200, 250,
                periods - 1}) {
    if (i >= periods) continue;
    t.add_row({fmt(i, 0), fmt(clean.cost[i], 1),
               std::isfinite(faulted.cost[i]) ? fmt(faulted.cost[i], 1)
                                              : "kpi-lost",
               fmt(clean.violations[i], 0), fmt(faulted.violations[i], 0)});
  }
  t.print(std::cout);

  std::cout << "\n-- run summaries --\n";
  Table s({"run", "tail_mean_cost", "violation_rate", "final_safe_set"});
  s.add_row({"clean", fmt(clean.summary.tail_mean_cost, 1),
             fmt(clean.summary.violation_rate, 3),
             fmt(static_cast<double>(clean.summary.final_safe_set_size), 0)});
  s.add_row({"faulted", fmt(faulted.summary.tail_mean_cost, 1),
             fmt(faulted.summary.violation_rate, 3),
             fmt(static_cast<double>(faulted.summary.final_safe_set_size), 0)});
  s.print(std::cout);

  const fault::FaultStats& fs = injector.stats();
  std::cout << "\n-- injected faults --\n"
            << "frames dropped/delayed/duplicated/corrupted: "
            << fs.frames_dropped << "/" << fs.frames_delayed << "/"
            << fs.frames_duplicated << "/" << fs.frames_corrupted << "\n"
            << "power blanks/spikes: " << fs.power_blanks << "/"
            << fs.power_spikes << ", mAP dropouts: " << fs.map_dropouts
            << ", delay dropouts: " << fs.delay_dropouts
            << ", perturbed periods: " << fs.event_periods << "\n";

  const core::ResilienceStats& rs = faulted.resilience;
  std::cout << "\n-- resilience response (faulted run) --\n"
            << "KPIs rejected (nan/range/outlier): " << rs.kpi_rejected_nan
            << "/" << rs.kpi_rejected_range << "/" << rs.kpi_rejected_outlier
            << "\n"
            << "policy delivery failures: " << faulted.delivery_failures
            << ", KPI losses: " << faulted.kpi_losses
            << ", GP update failures: " << rs.gp_update_failures << "\n"
            << "watchdog trips: " << rs.watchdog_trips
            << " (hold selects: " << rs.watchdog_hold_selects
            << "), last-safe fallbacks: " << rs.last_safe_fallbacks << "\n";

  std::cout << "\nShape check: the faulted run converges to a tail cost close "
               "to the clean run's, with a violation rate within 2x; every "
               "injected frame fault shows up in the fabric counters rather "
               "than as a crash.\n";
  return 0;
}
