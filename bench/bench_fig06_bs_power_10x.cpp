// Fig. 6 — BS power consumption vs. radio policies under 10x offered load.
// Same sweep as Fig. 5 with the BS additionally carrying 9x background bulk
// traffic; the MCS effect inverts for high-resolution (high-load) streams.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace edgebol;

  banner(std::cout, "Fig. 6: BS power vs mean MCS at 10x load");
  env::Testbed tb =
      env::make_static_testbed(35.0, env::high_load_config(10.0));

  for (double airtime : {0.2, 0.5, 1.0}) {
    std::cout << "\n-- panel: airtime = " << fmt(100 * airtime, 0) << "% --\n";
    Table t({"resolution_pct", "mcs_cap", "mean_mcs", "bs_power_W"});
    for (double res : {0.25, 0.50, 0.75, 1.00}) {
      for (int mcs = 4; mcs <= ran::kMaxUlMcs; mcs += 4) {
        env::ControlPolicy p;
        p.resolution = res;
        p.airtime = airtime;
        p.mcs_cap = mcs;
        const env::Measurement e = tb.expected(p);
        t.add_row({fmt(100 * res, 0), fmt(mcs, 0), fmt(e.mean_mcs, 1),
                   fmt(e.bs_power_w, 3)});
      }
    }
    t.print(std::cout);
  }

  std::cout << "\nShape check (paper): at 10x load the BBU saturates for "
               "high-res streams, so higher MCS now *raises* power, while "
               "low-res streams keep the low-load ordering.\n";
  return 0;
}
