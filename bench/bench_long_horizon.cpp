// Long-horizon per-period cost: observation budget vs unbounded storage.
//
// Runs the EdgeBOL loop for thousands of periods twice on the same static
// testbed — once with EdgeBolConfig::gp_budget set (sliding-window
// downdates keep every surrogate at B observations) and once unbounded
// (the paper's setting, where the factor grows with t). At checkpoints
// t in {T/10, T/2, T} it reports the p50/p99 of the per-period decision
// cost (select + update wall time; the simulated testbed step is untimed)
// over the trailing T/10 periods, plus the process RSS. The budgeted run
// goes first so each run's VmHWM reading is attributable to it.
//
// This is the evidence harness for the budget's two claims:
//   * latency flat: budgeted p50 at t=T within ~1.25x of t=T/10, while the
//     unbounded run's grows with t (O(t) fold + O(t^2) memory traffic);
//   * quality kept: budgeted mean cost and constraint-violation count stay
//     within a few percent of the unbounded run's on the same seed.
//
// Usage: bench_long_horizon [--smoke] [--periods N] [--budget B]
//                           [--grid L] [--threads N] [--eviction oldest|minlev]
//                           [--out PATH]
// Emits BENCH_long_horizon.json alongside the human-readable tables.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace edgebol;

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

// VmRSS / VmHWM from /proc/self/status, in MiB (0.0 when unavailable —
// non-Linux hosts still run the latency side of the bench).
double proc_status_mb(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key, 0) == 0) {
      std::istringstream ls(line.substr(std::strlen(key) + 1));
      double kb = 0.0;
      ls >> kb;
      return kb / 1024.0;
    }
  }
  return 0.0;
}

struct Checkpoint {
  std::size_t t = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double rss_mb = 0.0;
};

struct RunResult {
  std::string name;
  std::vector<Checkpoint> checkpoints;
  double peak_rss_mb = 0.0;
  double mean_cost = 0.0;
  std::size_t violations = 0;
  std::size_t observations = 0;  // surrogate size at the end of the run
};

struct Config {
  bool smoke = false;
  std::size_t periods = 5000;
  std::size_t budget = 200;
  std::size_t grid_levels = 5;  // 5^4 = 625 candidates
  std::size_t threads = 1;
  gp::EvictionPolicy eviction = gp::EvictionPolicy::kOldest;
  std::string out = "BENCH_long_horizon.json";
};

// One full loop; budget 0 = unbounded. Timing covers the agent's work only
// (select + update); the testbed step in between is simulation, not agent.
RunResult run_loop(const Config& cfg, std::size_t budget, const char* name) {
  env::Testbed tb = env::make_static_testbed(35.0);

  env::GridSpec spec;
  spec.levels_per_dim = cfg.grid_levels;

  core::EdgeBolConfig agent_cfg;
  agent_cfg.weights = {1.0, 8.0};
  agent_cfg.constraints = {0.4, 0.5};
  agent_cfg.gp_budget = budget;
  agent_cfg.gp_eviction = cfg.eviction;
  agent_cfg.num_threads = cfg.threads;
  core::EdgeBol agent(env::ControlGrid{spec}, agent_cfg);

  const std::size_t window = std::max<std::size_t>(cfg.periods / 10, 10);
  std::vector<std::size_t> marks = {window, cfg.periods / 2, cfg.periods};
  std::sort(marks.begin(), marks.end());
  marks.erase(std::remove_if(marks.begin(), marks.end(),
                             [&](std::size_t t) {
                               return t == 0 || t > cfg.periods;
                             }),
              marks.end());
  marks.erase(std::unique(marks.begin(), marks.end()), marks.end());

  RunResult res;
  res.name = name;
  std::vector<double> period_ms;
  period_ms.reserve(cfg.periods);
  double cost_sum = 0.0;

  for (std::size_t t = 1; t <= cfg.periods; ++t) {
    const env::Context c = tb.context();
    const double t0 = now_ms();
    const core::Decision d = agent.select(c);
    const double t1 = now_ms();
    const env::Measurement m = tb.step(d.policy);
    const double t2 = now_ms();
    agent.update(c, d.policy_index, m);
    period_ms.push_back((t1 - t0) + (now_ms() - t2));

    cost_sum += agent.weights().cost(m.server_power_w, m.bs_power_w);
    res.violations += (m.delay_s > agent.constraints().d_max_s) ||
                      (m.map < agent.constraints().map_min);

    if (std::find(marks.begin(), marks.end(), t) != marks.end()) {
      const std::size_t lo = period_ms.size() - std::min(window, t);
      std::vector<double> tail(period_ms.begin() + static_cast<long>(lo),
                               period_ms.end());
      Checkpoint cp;
      cp.t = t;
      cp.p50_ms = percentile(tail, 50.0);
      cp.p99_ms = percentile(tail, 99.0);
      cp.rss_mb = proc_status_mb("VmRSS:");
      res.checkpoints.push_back(cp);
    }
  }

  res.peak_rss_mb = proc_status_mb("VmHWM:");
  res.mean_cost = cost_sum / static_cast<double>(cfg.periods);
  res.observations = agent.num_observations();
  return res;
}

void write_json(const Config& cfg, const std::vector<RunResult>& runs) {
  std::ofstream os(cfg.out);
  os.precision(6);
  os << "{\n  \"bench\": \"long_horizon\",\n";
  os << "  \"periods\": " << cfg.periods << ",\n";
  os << "  \"budget\": " << cfg.budget << ",\n";
  os << "  \"grid_levels\": " << cfg.grid_levels << ",\n";
  os << "  \"threads\": " << cfg.threads << ",\n";
  os << "  \"eviction\": \""
     << (cfg.eviction == gp::EvictionPolicy::kOldest ? "oldest" : "min_leverage")
     << "\",\n";
  os << "  \"runs\": [\n";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const RunResult& run = runs[r];
    os << "    {\n      \"name\": \"" << run.name << "\",\n";
    os << "      \"checkpoints\": [\n";
    for (std::size_t i = 0; i < run.checkpoints.size(); ++i) {
      const Checkpoint& cp = run.checkpoints[i];
      os << "        {\"t\": " << cp.t << ", \"p50_ms\": " << cp.p50_ms
         << ", \"p99_ms\": " << cp.p99_ms << ", \"rss_mb\": " << cp.rss_mb
         << "}" << (i + 1 < run.checkpoints.size() ? "," : "") << "\n";
    }
    os << "      ],\n";
    os << "      \"peak_rss_mb\": " << run.peak_rss_mb << ",\n";
    os << "      \"mean_cost\": " << run.mean_cost << ",\n";
    os << "      \"violations\": " << run.violations << ",\n";
    os << "      \"observations\": " << run.observations << "\n";
    os << "    }" << (r + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edgebol;
  using namespace edgebol::bench;

  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (std::strcmp(argv[i], "--periods") == 0 && i + 1 < argc) {
      cfg.periods = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      cfg.budget = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--grid") == 0 && i + 1 < argc) {
      cfg.grid_levels = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      cfg.threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--eviction") == 0 && i + 1 < argc) {
      const char* v = argv[++i];
      if (std::strcmp(v, "oldest") == 0) {
        cfg.eviction = gp::EvictionPolicy::kOldest;
      } else if (std::strcmp(v, "minlev") == 0) {
        cfg.eviction = gp::EvictionPolicy::kMinLeverage;
      } else {
        std::fprintf(stderr, "unknown eviction policy: %s\n", v);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      cfg.out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--periods N] [--budget B] [--grid L]"
                   " [--threads N] [--eviction oldest|minlev] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (cfg.smoke) {
    cfg.periods = 400;
    cfg.grid_levels = 4;
    cfg.budget = 60;
  }

  banner(std::cout, "Long horizon: budgeted GP (sliding window) vs unbounded");
  std::cout << "(" << cfg.periods << " periods, budget " << cfg.budget
            << ", grid " << cfg.grid_levels << "^4, threads " << cfg.threads
            << ")\n\n";

  std::vector<RunResult> runs;
  runs.push_back(run_loop(cfg, cfg.budget, "budgeted"));
  runs.push_back(run_loop(cfg, 0, "unbounded"));

  for (const RunResult& run : runs) {
    std::printf("%-10s (final obs %zu)\n", run.name.c_str(),
                run.observations);
    std::printf("  %8s %12s %12s %10s\n", "t", "p50(ms)", "p99(ms)",
                "rss(MB)");
    for (const Checkpoint& cp : run.checkpoints) {
      std::printf("  %8zu %12.4f %12.4f %10.1f\n", cp.t, cp.p50_ms, cp.p99_ms,
                  cp.rss_mb);
    }
    std::printf("  peak rss %.1f MB   mean cost %.4f   violations %zu\n\n",
                run.peak_rss_mb, run.mean_cost, run.violations);
  }

  const Checkpoint& b_first = runs[0].checkpoints.front();
  const Checkpoint& b_last = runs[0].checkpoints.back();
  const Checkpoint& u_first = runs[1].checkpoints.front();
  const Checkpoint& u_last = runs[1].checkpoints.back();
  std::printf("latency growth first->last checkpoint: budgeted %.2fx, "
              "unbounded %.2fx\n",
              b_last.p50_ms / b_first.p50_ms, u_last.p50_ms / u_first.p50_ms);
  const double cost_delta =
      100.0 * (runs[0].mean_cost - runs[1].mean_cost) / runs[1].mean_cost;
  std::printf("budgeted mean cost vs unbounded: %+.2f%%  (violations %zu vs "
              "%zu)\n",
              cost_delta, runs[0].violations, runs[1].violations);

  write_json(cfg, runs);
  std::fprintf(stderr, "wrote %s\n", cfg.out.c_str());
  return 0;
}
