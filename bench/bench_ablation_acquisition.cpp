// Ablation (§5, "Acquisition function") — EdgeBOL's safe contextual LCB
// (eq. 9) vs a SafeOpt-style max-width acquisition over minimizers and
// expanders. The paper reports that SafeOpt "has overly slow convergence";
// this bench reproduces the comparison on identical seeds.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace edgebol;
  using namespace edgebol::bench;

  const int periods = 150;
  const int reps = argc > 1 ? std::max(1, std::atoi(argv[1])) : 3;

  banner(std::cout, "Ablation: safe-LCB (EdgeBOL) vs SafeOpt acquisition");
  std::cout << "(" << reps << " repetitions; delta2 = 8, d_max = 0.4 s, "
            << "rho_min = 0.5; median cost over time)\n";

  struct KindResult {
    std::vector<double> cost_med;
    double violation_rate = 0.0;
  };
  auto run_kind = [&](core::AcquisitionKind kind) {
    std::vector<std::vector<double>> costs;
    int viol = 0, considered = 0;
    for (int rep = 0; rep < reps; ++rep) {
      env::TestbedConfig tcfg;
      tcfg.seed = 7000 + static_cast<std::uint64_t>(rep);
      env::Testbed tb = env::make_static_testbed(35.0, tcfg);
      core::EdgeBolConfig cfg;
      cfg.weights = {1.0, 8.0};
      cfg.constraints = {0.4, 0.5};
      cfg.acquisition = kind;
      core::EdgeBol agent(env::ControlGrid{}, cfg);
      const Trajectory tr = run_edgebol(tb, agent, periods);
      costs.push_back(tr.cost);
      for (std::size_t ti = 0; ti < tr.delay_s.size(); ++ti) {
        ++considered;
        viol += tr.delay_s[ti] > 0.4 * 1.05 || tr.map[ti] < 0.5 - 0.03;
      }
    }
    KindResult r;
    r.cost_med = percentile_series(costs, 50);
    r.violation_rate = static_cast<double>(viol) / considered;
    return r;
  };

  const KindResult lcb = run_kind(core::AcquisitionKind::kSafeLcb);
  const KindResult sopt = run_kind(core::AcquisitionKind::kSafeOpt);
  const KindResult unsafe = run_kind(core::AcquisitionKind::kGlobalLcb);

  Table t({"t", "safe_lcb_cost_med", "safeopt_cost_med", "unsafe_lcb_cost_med"});
  for (int ti : {0, 5, 10, 15, 20, 25, 35, 50, 75, 100, 125, 149}) {
    t.add_row({fmt(ti, 0), fmt(lcb.cost_med[ti], 1), fmt(sopt.cost_med[ti], 1),
               fmt(unsafe.cost_med[ti], 1)});
  }
  t.print(std::cout);
  std::cout << "\nviolation rates: safe-LCB = " << fmt(lcb.violation_rate, 3)
            << ", SafeOpt = " << fmt(sopt.violation_rate, 3)
            << ", unsafe global LCB = " << fmt(unsafe.violation_rate, 3)
            << "\n";

  auto tail = [](const std::vector<double>& xs) {
    double s = 0.0;
    for (std::size_t i = xs.size() - 30; i < xs.size(); ++i) s += xs[i];
    return s / 30.0;
  };
  std::cout << "converged cost (last 30 periods): safe-LCB = "
            << fmt(tail(lcb.cost_med), 1)
            << ", SafeOpt = " << fmt(tail(sopt.cost_med), 1)
            << ", unsafe = " << fmt(tail(unsafe.cost_med), 1)
            << "\nShape check (paper): SafeOpt spends its samples on "
               "boundary width reduction, so its average cost converges "
               "much more slowly than EdgeBOL's cost-directed LCB; the "
               "unsafe variant may converge fast but pays in constraint "
               "violations during exploration — what the safe set (eq. 8) "
               "prevents.\n";
  return 0;
}
