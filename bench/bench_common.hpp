// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every bench prints the same rows/series the corresponding figure in the
// paper reports, as aligned tables on stdout (pipe through `column` or
// redirect to CSV via the printed tables for plotting). Lines labelled
// p10/median/p90 mirror the paper's shaded-percentile presentation.

#pragma once

#include <functional>
#include <iostream>
#include <vector>

#include <edgebol/edgebol.hpp>

namespace edgebol::bench {

/// Per-period trajectory of one EdgeBOL run.
struct Trajectory {
  std::vector<double> cost;
  std::vector<double> delay_s;
  std::vector<double> map;
  std::vector<double> bs_power_w;
  std::vector<double> server_power_w;
  std::vector<double> safe_set_size;
  std::vector<double> resolution;
  std::vector<double> airtime;
  std::vector<double> gpu_speed;
  std::vector<double> mcs_norm;
  std::vector<double> mean_snr_db;
};

/// Run Algorithm 1 for `periods` periods on `testbed` and record everything.
inline Trajectory run_edgebol(env::Testbed& testbed, core::EdgeBol& agent,
                              int periods) {
  Trajectory tr;
  for (int t = 0; t < periods; ++t) {
    const env::Context c = testbed.context();
    const core::Decision d = agent.select(c);
    const env::Measurement m = testbed.step(d.policy);
    agent.update(c, d.policy_index, m);

    tr.cost.push_back(agent.weights().cost(m.server_power_w, m.bs_power_w));
    tr.delay_s.push_back(m.delay_s);
    tr.map.push_back(m.map);
    tr.bs_power_w.push_back(m.bs_power_w);
    tr.server_power_w.push_back(m.server_power_w);
    tr.safe_set_size.push_back(static_cast<double>(d.safe_set_size));
    tr.resolution.push_back(d.policy.resolution);
    tr.airtime.push_back(d.policy.airtime);
    tr.gpu_speed.push_back(d.policy.gpu_speed);
    tr.mcs_norm.push_back(static_cast<double>(d.policy.mcs_cap) /
                          ran::kMaxUlMcs);
    tr.mean_snr_db.push_back(m.mean_snr_db);
  }
  return tr;
}

/// Percentile across repetitions at each time index (series must be equal
/// length).
inline std::vector<double> percentile_series(
    const std::vector<std::vector<double>>& reps, double p) {
  std::vector<double> out;
  if (reps.empty()) return out;
  for (std::size_t t = 0; t < reps.front().size(); ++t) {
    std::vector<double> xs;
    xs.reserve(reps.size());
    for (const auto& r : reps) xs.push_back(r[t]);
    out.push_back(percentile(xs, p));
  }
  return out;
}

/// Mean of the last `n` entries (converged value of a trajectory).
inline double tail_mean(const std::vector<double>& xs, std::size_t n) {
  if (xs.size() < n) n = xs.size();
  double s = 0.0;
  for (std::size_t i = xs.size() - n; i < xs.size(); ++i) s += xs[i];
  return n > 0 ? s / static_cast<double>(n) : 0.0;
}

/// The three constraint settings of §6.3 adapted to this platform's delay
/// distribution (the stringent bound is scaled so it remains barely
/// feasible, as in the paper; see EXPERIMENTS.md).
struct ConstraintSetting {
  const char* label;
  core::ConstraintSpec spec;
};

inline std::vector<ConstraintSetting> fig10_constraint_settings() {
  return {{"lax(d<=0.5,map>=0.4)", {0.5, 0.4}},
          {"medium(d<=0.4,map>=0.5)", {0.4, 0.5}},
          {"stringent(d<=0.32,map>=0.6)", {0.32, 0.6}}};
}

inline std::vector<double> fig10_delta2_values() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
}

}  // namespace edgebol::bench
