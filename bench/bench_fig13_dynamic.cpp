// Fig. 13 — Dynamic contexts: an untrained EdgeBOL deployed in a scenario
// whose mean SNR quickly sweeps between 5 and 38 dB. Reports the per-period
// average SNR, the safe-set size |S_t|, and the four selected policies
// (delta1 = 1, delta2 = 8, d_max = 0.6 s, rho_min = 0.5 — the delay bound
// is feasible across the whole SNR range as in the paper's setup).

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace edgebol;
  using namespace edgebol::bench;

  const int periods = 150;
  const int reps = argc > 1 ? std::max(1, std::atoi(argv[1])) : 3;

  banner(std::cout, "Fig. 13: policy evolution under dynamic contexts");
  std::cout << "(" << reps << " repetitions; medians across repetitions)\n";

  std::vector<std::vector<double>> snr, safe, gpu, res, air, mcs;
  for (int rep = 0; rep < reps; ++rep) {
    env::TestbedConfig tcfg;
    tcfg.seed = 5000 + static_cast<std::uint64_t>(rep);
    env::Testbed tb = env::make_dynamic_testbed(5.0, 38.0, 6, 4, tcfg);
    core::EdgeBolConfig cfg;
    cfg.weights = {1.0, 8.0};
    cfg.constraints = {0.6, 0.5};
    core::EdgeBol agent(env::ControlGrid{}, cfg);
    const Trajectory tr = run_edgebol(tb, agent, periods);
    snr.push_back(tr.mean_snr_db);
    safe.push_back(tr.safe_set_size);
    gpu.push_back(tr.gpu_speed);
    res.push_back(tr.resolution);
    air.push_back(tr.airtime);
    mcs.push_back(tr.mcs_norm);
  }

  Table t({"t", "avg_snr_dB", "safe_set_size", "gpu_speed", "image_res",
           "airtime", "mcs_policy"});
  const auto s50 = percentile_series(snr, 50), ss50 = percentile_series(safe, 50),
             g50 = percentile_series(gpu, 50), r50 = percentile_series(res, 50),
             a50 = percentile_series(air, 50), m50 = percentile_series(mcs, 50);
  for (int ti = 0; ti < periods; ti += 5) {
    t.add_row({fmt(ti, 0), fmt(s50[ti], 1), fmt(ss50[ti], 0), fmt(g50[ti], 2),
               fmt(r50[ti], 2), fmt(a50[ti], 2), fmt(m50[ti], 2)});
  }
  t.print(std::cout);

  std::cout << "\nShape check (paper): the safe set stabilizes within ~25 "
               "periods and then fluctuates with the context; after ~3 sweep "
               "cycles EdgeBOL picks sensible policies even for contexts it "
               "has not seen, because GP correlations transfer knowledge "
               "across similar contexts.\n";
  return 0;
}
