// Fig. 1 — Mean average precision vs. service delay for images with
// different resolutions. All other policies fixed at the minimum-delay
// configuration (airtime 100%, GPU speed 100%, max MCS); each dot in the
// paper is a 150-image average, reproduced here as noisy period samples
// around the noise-free expectation.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace edgebol;

  banner(std::cout, "Fig. 1: mAP vs service delay per image resolution");
  env::Testbed tb = env::make_static_testbed(35.0);

  Table expected({"resolution_pct", "service_delay_ms", "mAP"});
  Table samples({"resolution_pct", "sample", "service_delay_ms", "mAP"});

  for (double res : {0.25, 0.50, 0.75, 1.00}) {
    env::ControlPolicy p;
    p.resolution = res;
    const env::Measurement e = tb.expected(p);
    expected.add_row({fmt(100 * res, 0), fmt(1000 * e.delay_s, 1),
                      fmt(e.map, 3)});
    for (int s = 0; s < 5; ++s) {
      const env::Measurement m = tb.step(p);
      samples.add_row({fmt(100 * res, 0), fmt(s, 0), fmt(1000 * m.delay_s, 1),
                       fmt(m.map, 3)});
    }
  }

  std::cout << "\n-- noise-free expectation --\n";
  expected.print(std::cout);
  std::cout << "\n-- 150-image-average samples (dots in the paper) --\n";
  samples.print(std::cout);

  std::cout << "\nShape check (paper): higher-res -> higher delay & higher "
               "precision;\nlow-res cuts delay at a 10-50% precision cost.\n";
  return 0;
}
