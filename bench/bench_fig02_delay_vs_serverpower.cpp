// Fig. 2 — Service delay vs. server power consumption for images with
// different resolutions and radio (airtime) policies. One panel per airtime
// in {20%, 50%, 100%}, GPU speed fixed at 100%, max MCS.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace edgebol;

  banner(std::cout,
         "Fig. 2: delay vs server power per airtime policy & resolution");
  env::Testbed tb = env::make_static_testbed(35.0);

  for (double airtime : {0.2, 0.5, 1.0}) {
    std::cout << "\n-- panel: airtime = " << fmt(100 * airtime, 0) << "% --\n";
    Table t({"resolution_pct", "server_power_W", "service_delay_ms",
             "frame_rate_hz"});
    for (double res : linspace(0.25, 1.0, 7)) {
      env::ControlPolicy p;
      p.resolution = res;
      p.airtime = airtime;
      const env::Measurement e = tb.expected(p);
      t.add_row({fmt(100 * res, 0), fmt(e.server_power_w, 1),
                 fmt(1000 * e.delay_s, 1), fmt(e.total_frame_rate_hz, 2)});
    }
    t.print(std::cout);
  }

  std::cout << "\nShape check (paper): higher airtime -> higher frame rate "
               "-> higher server power; lower-res -> lower delay but higher "
               "GPU load.\n";
  return 0;
}
