// Fig. 11 — The control policies EdgeBOL converges to, per delta2 and
// constraint setting (the companion of Fig. 10): mean GPU speed, image
// resolution, airtime and MCS policy over the converged tail of each run.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace edgebol;
  using namespace edgebol::bench;

  const int periods = 180;
  const int reps = argc > 1 ? std::max(1, std::atoi(argv[1])) : 3;

  banner(std::cout, "Fig. 11: converged mean policies vs delta2");
  std::cout << "(" << reps << " repetitions; mean over last 50 periods; all "
            << "policies normalized to [0,1])\n";

  const env::ControlGrid grid;

  for (const ConstraintSetting& setting : fig10_constraint_settings()) {
    std::cout << "\n-- constraints: " << setting.label << " --\n";
    Table t({"delta2", "mean_gpu_speed", "mean_image_res", "mean_airtime",
             "mean_mcs_policy"});
    for (double delta2 : fig10_delta2_values()) {
      RunningStats gpu, res, air, mcs;
      for (int rep = 0; rep < reps; ++rep) {
        env::TestbedConfig tcfg;
        tcfg.seed = 3000 + static_cast<std::uint64_t>(rep);
        env::Testbed tb = env::make_static_testbed(35.0, tcfg);
        core::EdgeBolConfig cfg;
        cfg.weights = {1.0, delta2};
        cfg.constraints = setting.spec;
        core::EdgeBol agent(grid, cfg);
        const Trajectory tr = run_edgebol(tb, agent, periods);
        gpu.add(tail_mean(tr.gpu_speed, 50));
        res.add(tail_mean(tr.resolution, 50));
        air.add(tail_mean(tr.airtime, 50));
        mcs.add(tail_mean(tr.mcs_norm, 50));
      }
      t.add_row({fmt(delta2, 0), fmt(gpu.mean(), 3), fmt(res.mean(), 3),
                 fmt(air.mean(), 3), fmt(mcs.mean(), 3)});
    }
    t.print(std::cout);
  }

  std::cout << "\nShape check (paper): under lax constraints, small delta2 "
               "-> low GPU speed compensated by high resolution/airtime; "
               "large delta2 -> low radio usage compensated by higher GPU "
               "speed and lower resolution. Under stringent constraints the "
               "policies barely move with delta2.\n";
  return 0;
}
