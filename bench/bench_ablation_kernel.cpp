// Ablation (§5, "Kernel selection") — the anisotropic Matérn-3/2 kernel the
// paper selects vs (i) an anisotropic RBF with the same length-scales and
// (ii) an *isotropic* Matérn (all length-scales equal), quantifying what
// the smoothness and anisotropy choices buy.

#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace edgebol;

core::EdgeBolConfig variant_config(gp::KernelFamily family, bool isotropic) {
  core::EdgeBolConfig cfg;
  cfg.weights = {1.0, 8.0};
  cfg.constraints = {0.4, 0.5};
  auto tweak = [&](gp::GpHyperparams hp) {
    hp.family = family;
    if (isotropic) {
      double mean_ls = 0.0;
      for (double l : hp.lengthscales) mean_ls += l;
      mean_ls /= static_cast<double>(hp.lengthscales.size());
      hp.lengthscales.assign(hp.lengthscales.size(), mean_ls);
    }
    return hp;
  };
  cfg.cost_hp = tweak(core::default_cost_hyperparams());
  cfg.delay_hp = tweak(core::default_delay_hyperparams());
  cfg.map_hp = tweak(core::default_map_hyperparams());
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edgebol;
  using namespace edgebol::bench;

  const int periods = 150;
  const int reps = argc > 1 ? std::max(1, std::atoi(argv[1])) : 3;

  banner(std::cout,
         "Ablation: anisotropic Matern-3/2 (paper) vs RBF vs isotropic");
  std::cout << "(" << reps << " repetitions; delta2 = 8; medians)\n";

  struct Variant {
    const char* label;
    gp::KernelFamily family;
    bool isotropic;
  };
  for (const Variant v :
       {Variant{"anisotropic Matern-3/2 (paper)", gp::KernelFamily::kMatern32,
                false},
        Variant{"anisotropic RBF", gp::KernelFamily::kRbf, false},
        Variant{"isotropic Matern-3/2", gp::KernelFamily::kMatern32, true}}) {
    std::vector<std::vector<double>> costs, delays, maps;
    for (int rep = 0; rep < reps; ++rep) {
      env::TestbedConfig tcfg;
      tcfg.seed = 7500 + static_cast<std::uint64_t>(rep);
      env::Testbed tb = env::make_static_testbed(35.0, tcfg);
      core::EdgeBol agent(env::ControlGrid{},
                          variant_config(v.family, v.isotropic));
      const Trajectory tr = run_edgebol(tb, agent, periods);
      costs.push_back(tr.cost);
      delays.push_back(tr.delay_s);
      maps.push_back(tr.map);
    }
    const auto c50 = percentile_series(costs, 50);
    const auto d50 = percentile_series(delays, 50);

    std::cout << "\n-- " << v.label << " --\n";
    Table t({"t", "cost_med", "delay_med_s"});
    for (int ti : {0, 10, 25, 50, 100, 149}) {
      t.add_row({fmt(ti, 0), fmt(c50[ti], 1), fmt(d50[ti], 3)});
    }
    t.print(std::cout);

    int viol = 0, considered = 0;
    for (std::size_t rep = 0; rep < delays.size(); ++rep) {
      for (std::size_t ti = 25; ti < delays[rep].size(); ++ti) {
        ++considered;
        viol += delays[rep][ti] > 0.4 * 1.05 || maps[rep][ti] < 0.5 - 0.03;
      }
    }
    std::cout << "constraint violations after t=25: " << viol << "/"
              << considered << "\n";
  }

  std::cout << "\nExpectation: the RBF's over-smooth prior is mildly "
               "overconfident near the safety boundary; discarding "
               "anisotropy hurts more — per-dimension length-scales encode "
               "that e.g. mAP varies only with resolution.\n";
  return 0;
}
