// Ablation (§4.4 / §6.4) — the value of the context. EdgeBOL conditions on
// c_t = [n_users, mean CQI, var CQI]; a context-blind variant feeds the
// agent a frozen context while the channel actually sweeps 5-38 dB. Without
// contextual conditioning the surrogates average incompatible channel
// states, so the blind agent keeps violating the delay constraint in poor
// conditions and/or wastes energy in good ones.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace edgebol;
  using namespace edgebol::bench;

  const int periods = 150;
  const int reps = argc > 1 ? std::max(1, std::atoi(argv[1])) : 3;

  banner(std::cout, "Ablation: contextual vs context-blind EdgeBOL");
  std::cout << "(" << reps << " repetitions; dynamic 5-38 dB scenario, "
            << "delta2 = 8, d_max = 0.6 s, rho_min = 0.5)\n\n";

  Table t({"variant", "mean_cost_t>=50", "violation_rate_t>=50"});

  for (const bool blind : {false, true}) {
    RunningStats cost, viol;
    for (int rep = 0; rep < reps; ++rep) {
      env::TestbedConfig tcfg;
      tcfg.seed = 7900 + static_cast<std::uint64_t>(rep);
      env::Testbed tb = env::make_dynamic_testbed(5.0, 38.0, 6, 4, tcfg);
      core::EdgeBolConfig cfg;
      cfg.weights = {1.0, 8.0};
      cfg.constraints = {0.6, 0.5};
      core::EdgeBol agent(env::ControlGrid{}, cfg);

      env::Context frozen = tb.context();
      int v = 0, n = 0;
      RunningStats c_run;
      for (int ti = 0; ti < periods; ++ti) {
        const env::Context ctx = blind ? frozen : tb.context();
        const core::Decision d = agent.select(ctx);
        const env::Measurement m = tb.step(d.policy);
        agent.update(ctx, d.policy_index, m);
        if (ti >= 50) {
          ++n;
          v += m.delay_s > 0.6 * 1.05 || m.map < 0.5 - 0.03;
          c_run.add(agent.weights().cost(m.server_power_w, m.bs_power_w));
        }
      }
      cost.add(c_run.mean());
      viol.add(static_cast<double>(v) / n);
    }
    t.add_row({blind ? "context-blind" : "contextual (EdgeBOL)",
               fmt(cost.mean(), 1), fmt(viol.mean(), 3)});
  }
  t.print(std::cout);

  std::cout << "\nExpectation: the contextual agent adapts its safe set to "
               "the channel and keeps violations low across the sweep; the "
               "blind agent either violates in poor channels or overpays in "
               "good ones.\n";
  return 0;
}
