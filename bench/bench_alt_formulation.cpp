// Extension experiment (§4.3) — the dual formulation: minimize service
// delay subject to power budgets (solar/PoE vBS, capped edge compute) and a
// minimum precision, instead of minimizing energy under a delay SLA. Runs
// PowerBudgetBol across a sweep of server-power budgets and reports the
// achieved delay frontier, plus a runtime budget cut (battery running low).

#include <iostream>

#include "bench_common.hpp"

#include "core/formulations.hpp"

int main(int argc, char** argv) {
  using namespace edgebol;
  using namespace edgebol::bench;

  const int periods = argc > 1 ? std::max(60, std::atoi(argv[1])) : 150;

  banner(std::cout, "Extension (4.3): min-delay under power budgets");
  std::cout << "(rho_min = 0.5, BS budget 5.6 W; sweep of server budgets)\n\n";

  env::GridSpec spec;
  spec.levels_per_dim = 7;
  const env::ControlGrid grid(spec);

  Table t({"server_budget_W", "mean_delay_s_tail", "server_power_tail_W",
           "bs_power_tail_W", "mAP_tail", "budget_viol_rate"});

  for (double budget : {100.0, 115.0, 130.0, 150.0, 175.0}) {
    core::PowerBudgetConfig cfg;
    cfg.server_power_budget_w = budget;
    cfg.bs_power_budget_w = 5.6;
    cfg.map_min = 0.5;
    core::PowerBudgetBol agent(grid, cfg);

    env::TestbedConfig tcfg;
    tcfg.seed = 8200;
    env::Testbed tb = env::make_static_testbed(35.0, tcfg);

    RunningStats delay, ps, pb, map;
    int viol = 0, n = 0;
    for (int tt = 0; tt < periods; ++tt) {
      const env::Context c = tb.context();
      const core::GenericDecision d = agent.select(c);
      const env::Measurement m = tb.step(agent.policy(d.index));
      agent.update(c, d.index, m);
      if (tt >= periods - 50) {
        ++n;
        delay.add(m.delay_s);
        ps.add(m.server_power_w);
        pb.add(m.bs_power_w);
        map.add(m.map);
        viol += (m.server_power_w > budget * 1.05 ||
                 m.bs_power_w > 5.6 * 1.05 || m.map < 0.5 - 0.03);
      }
    }
    t.add_row({fmt(budget, 0), fmt(delay.mean(), 3), fmt(ps.mean(), 1),
               fmt(pb.mean(), 2), fmt(map.mean(), 3),
               fmt(static_cast<double>(viol) / n, 3)});
  }
  t.print(std::cout);

  // Runtime budget cut: the battery is draining, halve the server budget.
  std::cout << "\n-- runtime budget cut (150 W -> 105 W at t=" << periods
            << ") --\n";
  core::PowerBudgetConfig cfg;
  cfg.server_power_budget_w = 150.0;
  cfg.bs_power_budget_w = 5.6;
  cfg.map_min = 0.5;
  core::PowerBudgetBol agent(grid, cfg);
  env::TestbedConfig tcfg;
  tcfg.seed = 8300;
  env::Testbed tb = env::make_static_testbed(35.0, tcfg);

  Table t2({"phase", "mean_delay_s", "mean_server_power_W", "viol_rate"});
  for (const auto& [label, budget, len] :
       {std::tuple{"budget 150 W", 150.0, periods},
        std::tuple{"budget 105 W", 105.0, periods}}) {
    agent.set_server_power_budget(budget);
    RunningStats delay, power;
    int viol = 0;
    for (int tt = 0; tt < len; ++tt) {
      const env::Context c = tb.context();
      const core::GenericDecision d = agent.select(c);
      const env::Measurement m = tb.step(agent.policy(d.index));
      agent.update(c, d.index, m);
      if (tt >= len / 3) {
        delay.add(m.delay_s);
        power.add(m.server_power_w);
        viol += (m.server_power_w > budget * 1.05);
      }
    }
    t2.add_row({label, fmt(delay.mean(), 3), fmt(power.mean(), 1),
                fmt(static_cast<double>(viol) / (len - len / 3), 3)});
  }
  t2.print(std::cout);

  std::cout << "\nShape check: tighter budgets force slower (higher-delay) "
               "operating points — the frontier the paper's flexibility "
               "claim implies; the runtime cut is honored within a few "
               "periods because the surrogates were already learned.\n";
  return 0;
}
