// Fig. 12 — Empirical optimality gap with multiple heterogeneous users.
// Scenarios with N in {1..6} users: user 1 at 30 dB mean SNR, every
// additional user 20% lower. d_max = 2 s, rho_min = 0.6 (feasible even with
// 6 users), delta1 = 1, delta2 in {1, 2, 4, 8}. EdgeBOL's converged cost is
// compared with the offline exhaustive-search optimum, and the constraint
// satisfaction probability is reported (the paper quotes ~2% gap, 0.98).

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace edgebol;
  using namespace edgebol::bench;

  const int periods = 150;
  const int max_users = argc > 1 ? std::max(1, std::atoi(argv[1])) : 6;

  banner(std::cout, "Fig. 12: EdgeBOL vs optimal with heterogeneous users");

  const core::ConstraintSpec constraints{2.0, 0.6};
  const env::ControlGrid grid;

  for (double delta2 : {1.0, 2.0, 4.0, 8.0}) {
    std::cout << "\n-- delta2 = " << fmt(delta2, 0) << " --\n";
    Table t({"n_users", "edgebol_cost", "optimal_cost", "gap_pct",
             "constraint_sat_prob"});
    for (int n = 1; n <= max_users; ++n) {
      const core::CostWeights w{1.0, delta2};

      env::TestbedConfig tcfg;
      tcfg.seed = 4000 + static_cast<std::uint64_t>(n);
      env::Testbed tb =
          env::make_heterogeneous_testbed(static_cast<std::size_t>(n), 30.0,
                                          0.20, tcfg);
      core::EdgeBolConfig cfg;
      cfg.weights = w;
      cfg.constraints = constraints;
      core::EdgeBol agent(grid, cfg);
      const Trajectory tr = run_edgebol(tb, agent, periods);

      int ok = 0, considered = 0;
      for (std::size_t ti = 25; ti < tr.delay_s.size(); ++ti) {
        ++considered;
        ok += (tr.delay_s[ti] <= constraints.d_max_s &&
               tr.map[ti] >= constraints.map_min - 0.02);
      }

      const auto oracle = baselines::exhaustive_oracle(tb, grid, w,
                                                       constraints);
      const double converged = tail_mean(tr.cost, 40);
      t.add_row({fmt(n, 0), fmt(converged, 1), fmt(oracle.cost, 1),
                 fmt(100.0 * (converged / oracle.cost - 1.0), 1),
                 fmt(static_cast<double>(ok) / considered, 3)});
    }
    t.print(std::cout);
  }

  std::cout << "\nShape check (paper): EdgeBOL stays within a few percent of "
               "the oracle for every N and delta2 despite the aggregated-"
               "statistics context; total cost grows with the number of "
               "users (weaker channels need more resources).\n";
  return 0;
}
