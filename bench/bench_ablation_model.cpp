// Ablation (§5, "Function approximator") — why a GP and not a linear
// contextual bandit? The paper notes that most contextual bandit algorithms
// assume a linear context-control -> reward relationship, while the
// measured surfaces are non-linear. This bench runs EdgeBOL, LinUCB (linear
// ridge + optimism), epsilon-greedy (tabular) and random search on the same
// scenario and reports converged cost and constraint violations.

#include <iostream>

#include "bench_common.hpp"

#include "baselines/linucb.hpp"

int main(int argc, char** argv) {
  using namespace edgebol;
  using namespace edgebol::bench;

  const int periods = argc > 1 ? std::max(60, std::atoi(argv[1])) : 200;
  const int reps = argc > 2 ? std::max(1, std::atoi(argv[2])) : 3;

  banner(std::cout, "Ablation: GP (EdgeBOL) vs linear vs model-free bandits");
  std::cout << "(" << reps << " reps x " << periods
            << " periods; delta2 = 8, d_max = 0.4 s, rho_min = 0.5)\n\n";

  const core::CostWeights weights{1.0, 8.0};
  const core::ConstraintSpec sla{0.4, 0.5};
  env::GridSpec spec;
  spec.levels_per_dim = 6;  // tabular baselines need a tractable arm count
  const env::ControlGrid grid(spec);

  Table t({"agent", "converged_cost", "violation_rate", "oracle_gap_pct"});

  env::Testbed oracle_tb = env::make_static_testbed(35.0);
  const auto oracle = baselines::exhaustive_oracle(oracle_tb, grid, weights,
                                                   sla);

  auto report = [&](const char* name, RunningStats& cost,
                    RunningStats& viol) {
    t.add_row({name, fmt(cost.mean(), 1), fmt(viol.mean(), 3),
               fmt(100.0 * (cost.mean() / oracle.cost - 1.0), 1)});
  };

  auto violated = [&](const env::Measurement& m) {
    return m.delay_s > sla.d_max_s * 1.05 || m.map < sla.map_min - 0.03;
  };

  {  // EdgeBOL
    RunningStats cost, viol;
    for (int rep = 0; rep < reps; ++rep) {
      env::TestbedConfig tcfg;
      tcfg.seed = 8500 + static_cast<std::uint64_t>(rep);
      env::Testbed tb = env::make_static_testbed(35.0, tcfg);
      core::EdgeBolConfig cfg;
      cfg.weights = weights;
      cfg.constraints = sla;
      core::EdgeBol agent(grid, cfg);
      int v = 0;
      RunningStats c_run;
      for (int tt = 0; tt < periods; ++tt) {
        const env::Context c = tb.context();
        const core::Decision d = agent.select(c);
        const env::Measurement m = tb.step(d.policy);
        agent.update(c, d.policy_index, m);
        if (tt >= periods - 50) {
          c_run.add(weights.cost(m.server_power_w, m.bs_power_w));
          v += violated(m);
        }
      }
      cost.add(c_run.mean());
      viol.add(static_cast<double>(v) / 50.0);
    }
    report("EdgeBOL (GP)", cost, viol);
  }

  {  // LinUCB
    RunningStats cost, viol;
    for (int rep = 0; rep < reps; ++rep) {
      env::TestbedConfig tcfg;
      tcfg.seed = 8500 + static_cast<std::uint64_t>(rep);
      env::Testbed tb = env::make_static_testbed(35.0, tcfg);
      baselines::LinUcbAgent agent(grid, weights, sla, {});
      int v = 0;
      RunningStats c_run;
      for (int tt = 0; tt < periods; ++tt) {
        const env::Context c = tb.context();
        const std::size_t idx = agent.select(c);
        const env::Measurement m = tb.step(grid.policy(idx));
        agent.update(c, idx, m);
        if (tt >= periods - 50) {
          c_run.add(weights.cost(m.server_power_w, m.bs_power_w));
          v += violated(m);
        }
      }
      cost.add(c_run.mean());
      viol.add(static_cast<double>(v) / 50.0);
    }
    report("LinUCB (linear)", cost, viol);
  }

  {  // epsilon-greedy (tabular)
    RunningStats cost, viol;
    for (int rep = 0; rep < reps; ++rep) {
      env::TestbedConfig tcfg;
      tcfg.seed = 8500 + static_cast<std::uint64_t>(rep);
      env::Testbed tb = env::make_static_testbed(35.0, tcfg);
      baselines::EGreedyAgent agent(grid.size(), weights, sla, {},
                                    900 + static_cast<std::uint64_t>(rep));
      int v = 0;
      RunningStats c_run;
      for (int tt = 0; tt < periods; ++tt) {
        const std::size_t idx = agent.select();
        const env::Measurement m = tb.step(grid.policy(idx));
        agent.update(idx, m);
        if (tt >= periods - 50) {
          c_run.add(weights.cost(m.server_power_w, m.bs_power_w));
          v += violated(m);
        }
      }
      cost.add(c_run.mean());
      viol.add(static_cast<double>(v) / 50.0);
    }
    report("epsilon-greedy (tabular)", cost, viol);
  }

  {  // random search
    RunningStats cost, viol;
    for (int rep = 0; rep < reps; ++rep) {
      env::TestbedConfig tcfg;
      tcfg.seed = 8500 + static_cast<std::uint64_t>(rep);
      env::Testbed tb = env::make_static_testbed(35.0, tcfg);
      baselines::RandomSearchAgent agent(grid.size(), weights, sla,
                                         700 + static_cast<std::uint64_t>(rep));
      int v = 0;
      RunningStats c_run;
      for (int tt = 0; tt < periods; ++tt) {
        const std::size_t idx = agent.select();
        const env::Measurement m = tb.step(grid.policy(idx));
        agent.update(idx, m);
        if (tt >= periods - 50) {
          c_run.add(weights.cost(m.server_power_w, m.bs_power_w));
          v += violated(m);
        }
      }
      cost.add(c_run.mean());
      viol.add(static_cast<double>(v) / 50.0);
    }
    report("random search", cost, viol);
  }

  t.print(std::cout);

  std::cout << "\nExpectation: the GP agent dominates on both axes; the "
               "linear model cannot represent the bent cost surface (it "
               "lands on a mediocre corner and/or violates); tabular/random "
               "agents need orders of magnitude more samples than " << periods
            << " periods for a " << grid.size() << "-arm space.\n";
  return 0;
}
