// Fig. 9 — Convergence evaluation: evolution of the cost u_t, mAP rho_t,
// service delay d_t, BS power p^b_t and server power p^s_t over time for
// delta2 in {1, 2, 4, 8, 16, 32, 64}. Steady channel (35 dB mean SNR),
// delta1 = 1 mu/W, rho_min = 0.5, d_max = 0.4 s. Lines are medians over
// independent repetitions, with the 10th/90th percentiles as in the paper.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace edgebol;
  using namespace edgebol::bench;

  const int periods = 150;
  const int reps = argc > 1 ? std::max(1, std::atoi(argv[1])) : 5;

  banner(std::cout, "Fig. 9: convergence over time per delta2");
  std::cout << "(" << reps << " repetitions; median [p10, p90])\n";

  for (double delta2 : fig10_delta2_values()) {
    std::vector<std::vector<double>> cost, map, delay, pbs, psrv;
    for (int rep = 0; rep < reps; ++rep) {
      env::TestbedConfig tcfg;
      tcfg.seed = 1000 + static_cast<std::uint64_t>(rep);
      env::Testbed tb = env::make_static_testbed(35.0, tcfg);
      core::EdgeBolConfig cfg;
      cfg.weights = {1.0, delta2};
      cfg.constraints = {0.4, 0.5};
      core::EdgeBol agent(env::ControlGrid{}, cfg);
      const Trajectory tr = run_edgebol(tb, agent, periods);
      cost.push_back(tr.cost);
      map.push_back(tr.map);
      delay.push_back(tr.delay_s);
      pbs.push_back(tr.bs_power_w);
      psrv.push_back(tr.server_power_w);
    }

    std::cout << "\n-- delta2 = " << fmt(delta2, 0) << " --\n";
    Table t({"t", "cost_med", "cost_p10", "cost_p90", "mAP_med", "delay_med_s",
             "bs_power_med_W", "server_power_med_W"});
    const auto c50 = percentile_series(cost, 50), c10 = percentile_series(cost, 10),
               c90 = percentile_series(cost, 90), m50 = percentile_series(map, 50),
               d50 = percentile_series(delay, 50), b50 = percentile_series(pbs, 50),
               s50 = percentile_series(psrv, 50);
    for (int t_i : {0, 2, 5, 10, 15, 20, 25, 35, 50, 75, 100, 125, 149}) {
      t.add_row({fmt(t_i, 0), fmt(c50[t_i], 1), fmt(c10[t_i], 1),
                 fmt(c90[t_i], 1), fmt(m50[t_i], 3), fmt(d50[t_i], 3),
                 fmt(b50[t_i], 2), fmt(s50[t_i], 1)});
    }
    t.print(std::cout);
  }

  std::cout << "\nShape check (paper): cost converges within ~25 periods for "
               "every delta2; both constraints hold upon convergence with "
               "high probability; larger delta2 -> larger cost.\n";
  return 0;
}
