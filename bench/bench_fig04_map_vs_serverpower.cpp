// Fig. 4 — Mean average precision vs. server power consumption for images
// with different resolutions, at maximum radio and compute resources.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace edgebol;

  banner(std::cout, "Fig. 4: mAP vs server power per image resolution");
  env::Testbed tb = env::make_static_testbed(35.0);

  Table t({"resolution_pct", "server_power_W", "mAP"});
  for (double res : linspace(0.25, 1.0, 10)) {
    env::ControlPolicy p;
    p.resolution = res;
    const env::Measurement e = tb.expected(p);
    t.add_row({fmt(100 * res, 0), fmt(e.server_power_w, 1), fmt(e.map, 3)});
  }
  t.print(std::cout);

  std::cout << "\nShape check (paper): higher mAP requires *less* server "
               "power — high-res images are easier and fewer per second.\n";
  return 0;
}
