// Fig. 3 — Service delay (top) and GPU delay (bottom) vs. server power for
// images with different resolutions and GPU-speed policies. One panel per
// GPU speed in {10%, 45%, 100%}, airtime fixed at 100%, max MCS.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace edgebol;

  banner(std::cout,
         "Fig. 3: delay & GPU delay vs server power per GPU-speed policy");
  env::Testbed tb = env::make_static_testbed(35.0);

  for (double gpu : {0.1, 0.45, 1.0}) {
    std::cout << "\n-- panel: GPU speed = " << fmt(100 * gpu, 0) << "% --\n";
    Table t({"resolution_pct", "server_power_W", "service_delay_ms",
             "gpu_delay_ms"});
    for (double res : linspace(0.25, 1.0, 7)) {
      env::ControlPolicy p;
      p.resolution = res;
      p.gpu_speed = gpu;
      const env::Measurement e = tb.expected(p);
      t.add_row({fmt(100 * res, 0), fmt(e.server_power_w, 1),
                 fmt(1000 * e.delay_s, 1), fmt(1000 * e.gpu_delay_s, 1)});
    }
    t.print(std::cout);
  }

  std::cout << "\nShape check (paper): higher GPU speed -> lower delay, "
               "higher power; lower-res images *increase* GPU delay "
               "(Faster R-CNN works harder on low-res frames).\n";
  return 0;
}
