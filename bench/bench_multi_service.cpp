// Extension experiment (§4.4) — joint multi-service orchestration vs the
// per-slice design the paper adopts. Two MVA services share one vBS and one
// GPU. The joint agent controls both slices in a 6-context/8-control space
// with 4 constraints; the per-slice design runs two independent EdgeBOL
// instances under a static 50/50 airtime split. The paper argues the joint
// problem needs far more data (curse of dimensionality) — this bench
// measures exactly that trade-off: the joint optimum is at least as good,
// but convergence is much slower.

#include <iostream>

#include "bench_common.hpp"

#include "core/multi_service_bol.hpp"
#include "env/multi_service.hpp"

int main(int argc, char** argv) {
  using namespace edgebol;
  using namespace edgebol::bench;

  const int periods = argc > 1 ? std::max(50, std::atoi(argv[1])) : 400;

  banner(std::cout, "Extension (4.4): joint vs per-slice orchestration");
  std::cout << "(two services: slice A 1 user @32 dB, slice B 1 user @28 dB; "
            << "delta2 = 8; SLA per service: d <= 0.8 s, mAP >= 0.5)\n";

  const core::CostWeights weights{1.0, 8.0};
  const core::ConstraintSpec sla{0.8, 0.5};
  const int window = 25;

  // --- Joint agent over the coupled action space. ---
  env::TestbedConfig cfg_j;
  cfg_j.seed = 8001;
  env::MultiServiceTestbed tb_j =
      env::make_two_service_testbed(1, 32.0, 1, 28.0, cfg_j);
  core::JointBolConfig jcfg;
  jcfg.levels_per_dim = 3;
  jcfg.weights = weights;
  jcfg.constraints_a = sla;
  jcfg.constraints_b = sla;
  core::JointEdgeBol joint(jcfg);
  std::cout << "joint candidate pairs: " << joint.num_candidates() << "\n\n";

  std::vector<RunningStats> joint_cost(
      static_cast<std::size_t>((periods + window - 1) / window));
  std::vector<RunningStats> joint_viol(joint_cost.size());
  for (int t = 0; t < periods; ++t) {
    const linalg::Vector ctx = tb_j.joint_context_features();
    const core::JointDecision d = joint.select(ctx);
    const env::MultiMeasurement m = tb_j.step(d.policy.a, d.policy.b);
    joint.update(ctx, d.index, m);
    const auto wi = static_cast<std::size_t>(t / window);
    joint_cost[wi].add(weights.cost(m.server_power_w, m.bs_power_w));
    joint_viol[wi].add(
        static_cast<double>(m.service[0].delay_s > sla.d_max_s * 1.05 ||
                            m.service[1].delay_s > sla.d_max_s * 1.05 ||
                            m.service[0].map < sla.map_min - 0.03 ||
                            m.service[1].map < sla.map_min - 0.03));
  }

  // --- Per-slice design: two EdgeBOL instances, static 50/50 airtime. ---
  env::TestbedConfig cfg_p;
  cfg_p.seed = 8001;
  env::MultiServiceTestbed tb_p =
      env::make_two_service_testbed(1, 32.0, 1, 28.0, cfg_p);
  env::GridSpec slice_spec;
  slice_spec.levels_per_dim = 6;
  slice_spec.airtime_max = 0.5;  // the static split keeps a_1 + a_2 <= 1
  core::EdgeBolConfig scfg;
  scfg.weights = weights;
  scfg.constraints = sla;
  core::EdgeBol agent_a(env::ControlGrid{slice_spec}, scfg);
  core::EdgeBol agent_b(env::ControlGrid{slice_spec}, scfg);

  std::vector<RunningStats> slice_cost(joint_cost.size());
  std::vector<RunningStats> slice_viol(joint_cost.size());
  for (int t = 0; t < periods; ++t) {
    const env::Context ca = tb_p.context(0);
    const env::Context cb = tb_p.context(1);
    const core::Decision da = agent_a.select(ca);
    const core::Decision db = agent_b.select(cb);
    const env::MultiMeasurement m = tb_p.step(da.policy, db.policy);
    agent_a.update(ca, da.policy_index, m.service[0]);
    agent_b.update(cb, db.policy_index, m.service[1]);
    const auto wi = static_cast<std::size_t>(t / window);
    slice_cost[wi].add(weights.cost(m.server_power_w, m.bs_power_w));
    slice_viol[wi].add(
        static_cast<double>(m.service[0].delay_s > sla.d_max_s * 1.05 ||
                            m.service[1].delay_s > sla.d_max_s * 1.05 ||
                            m.service[0].map < sla.map_min - 0.03 ||
                            m.service[1].map < sla.map_min - 0.03));
  }

  Table t({"t", "joint_cost", "per_slice_cost", "joint_viol_rate",
           "per_slice_viol_rate"});
  for (std::size_t wi = 0; wi < joint_cost.size(); ++wi) {
    t.add_row({fmt(static_cast<double>(wi) * window, 0),
               fmt(joint_cost[wi].mean(), 1), fmt(slice_cost[wi].mean(), 1),
               fmt(joint_viol[wi].mean(), 3), fmt(slice_viol[wi].mean(), 3)});
  }
  t.print(std::cout);

  std::cout << "\nShape check (paper's argument): the per-slice design "
               "converges in tens of periods to the lower cost. The joint "
               "agent pays twice for its 14-dimensional space: it must use "
               "a far coarser discretization to stay tractable (3 levels/dim "
               "-> thousands of pairs already) and still explores far more "
               "slowly under 4 simultaneous constraints — the efficiency-vs-"
               "scalability trade-off that justifies per-slice deployment "
               "(§4.4).\n";
  return 0;
}
