// Phase-by-phase benchmark harness for the GP posterior engine.
//
// Compares the batched, cache-packed engine (gp::GpRegressor) against a
// reference scalar implementation written the way the pre-batching engine
// worked: per-candidate std::vector<Vector> substitution columns, a virtual
// kernel call per point pair, and a fresh allocation per triangular solve.
// Both sides run the same math, so the smoke mode doubles as a correctness
// check (posteriors must agree to 1e-9).
//
// Phases (the decision loop's cost centers, see DESIGN.md "Performance
// model"):
//   track      O(m n^2)  tracked-cache rebuild on a context switch
//   add        O(m n)    per-period fold of one new observation
//   evict      O(m n)    budgeted removal: Givens downdate + cache fold
//                        (baseline refactors + rebuilds, O(n^3 + n^2 m))
//   predict    O(n^2)    cold posterior at a single point
//   hyperopt   O(S n^3)  pre-production LML probes (engine = pooled)
//   full_period          3 surrogates x (posterior scan + add), as EdgeBol
//                        runs every period in steady state
//
// Emits machine-readable JSON (default BENCH_gp.json):
//   { n_obs, n_candidates, dims, threads, smoke,
//     phases: [{name, baseline_ms, engine_ms, speedup}] }
//
// Usage: bench_micro_gp [--smoke] [--threads N] [--out PATH]
//   --smoke    small sizes + engine-vs-reference correctness gate (CI).
//   --threads  engine-side pool size (default: hardware concurrency).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <edgebol/edgebol.hpp>

namespace {

using namespace edgebol;
using linalg::Vector;

volatile double g_sink = 0.0;  // keeps timed loops from being optimized out

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Reference scalar engine (pre-batching idiom): one Vector per candidate
// column, virtual kernel evaluation per pair, allocating triangular solves.
// ---------------------------------------------------------------------------
struct RefGp {
  std::unique_ptr<gp::Kernel> kernel;
  double noise;
  std::vector<Vector> z;
  Vector y;
  linalg::CholeskyFactor chol;
  Vector w;

  std::vector<Vector> cands;
  std::vector<Vector> acol;  // acol[j][i] = (L^{-1} K(train, cand j))[i]
  Vector mean, var;

  RefGp(std::unique_ptr<gp::Kernel> k, double noise_var)
      : kernel(std::move(k)), noise(noise_var) {}

  void add(const Vector& zn, double yn) {
    const std::size_t n = z.size();
    Vector k(n);
    for (std::size_t i = 0; i < n; ++i) k[i] = (*kernel)(z[i], zn);
    chol.extend(k, (*kernel)(zn, zn) + noise);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += chol.entry(n, i) * w[i];
    const double pivot = chol.diag(n);
    const double wn = (yn - acc) / pivot;
    w.push_back(wn);
    for (std::size_t j = 0; j < cands.size(); ++j) {
      const double knew = (*kernel)(zn, cands[j]);
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) dot += chol.entry(n, i) * acol[j][i];
      const double an = (knew - dot) / pivot;
      acol[j].push_back(an);
      mean[j] += an * wn;
      var[j] -= an * an;
    }
    z.push_back(zn);
    y.push_back(yn);
  }

  void track(const std::vector<Vector>& cs) {
    cands = cs;
    const std::size_t m = cands.size(), n = z.size();
    acol.assign(m, Vector{});
    mean.assign(m, 0.0);
    var.assign(m, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      Vector k(n);
      for (std::size_t i = 0; i < n; ++i) k[i] = (*kernel)(z[i], cands[j]);
      acol[j] = chol.solve_lower(k);  // allocates, like the old engine
      double mu = 0.0, red = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        mu += acol[j][i] * w[i];
        red += acol[j][i] * acol[j][i];
      }
      mean[j] = mu;
      var[j] = (*kernel)(cands[j], cands[j]) - red;
    }
  }

  // Pre-downdate eviction idiom: drop the observation, refactor the full
  // Gram matrix from scratch (O(n^3)), and rebuild every cache (O(n^2 m)).
  void evict_oldest() {
    z.erase(z.begin());
    y.erase(y.begin());
    const std::size_t n = z.size();
    linalg::Matrix gram(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        gram(i, j) = gram(j, i) = (*kernel)(z[i], z[j]);
      }
      gram(i, i) += noise;
    }
    chol = linalg::CholeskyFactor(gram);
    w = chol.solve_lower(y);
    if (!cands.empty()) {
      const std::vector<Vector> cs = cands;
      track(cs);
    }
  }

  gp::Prediction predict(const Vector& zq) const {
    const std::size_t n = z.size();
    Vector k(n);
    for (std::size_t i = 0; i < n; ++i) k[i] = (*kernel)(z[i], zq);
    const Vector v = chol.solve_lower(k);
    double mu = 0.0, red = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mu += v[i] * w[i];
      red += v[i] * v[i];
    }
    return {mu, std::max(0.0, (*kernel)(zq, zq) - red)};
  }
};

std::unique_ptr<gp::Kernel> make_kernel() {
  return std::make_unique<gp::Matern32Kernel>(Vector(7, 1.2), 0.8);
}

struct PhaseResult {
  std::string name;
  double baseline_ms = 0.0;
  double engine_ms = 0.0;
};

struct Config {
  bool smoke = false;
  std::size_t threads = 0;  // 0 = hardware concurrency
  std::string out = "BENCH_gp.json";
  std::size_t n_obs = 200;
  std::size_t grid_levels = 11;  // 11^4 = 14,641 candidates
  int reps = 3;
};

// Times the two sides of a phase rep by rep (A, B, A, B, ...) and returns
// each side's fastest call in ms. Scheduler noise on a shared machine only
// ever inflates a sample, so the minimum is the tightest estimate of the
// true cost — and interleaving matters as much as best-of-N: timing all of
// A's reps then all of B's gives a CPU-steal burst a whole window to land
// on one side and skew the A/B ratio the CI perf gate checks, whereas
// alternating spreads both sides across the same measurement span so a
// clean rep of each is equally likely.
template <typename FnA, typename FnB>
std::pair<double, double> timed_pair(int reps, const FnA& fa, const FnB& fb) {
  double best_a = std::numeric_limits<double>::infinity();
  double best_b = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    double t0 = now_ms();
    fa();
    best_a = std::min(best_a, now_ms() - t0);
    t0 = now_ms();
    fb();
    best_b = std::min(best_b, now_ms() - t0);
  }
  return {best_a, best_b};
}

std::vector<Vector> draw_inputs(std::size_t n, Rng& rng) {
  std::vector<Vector> zs;
  zs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector z(7);
    for (double& v : z) v = rng.uniform();
    zs.push_back(std::move(z));
  }
  return zs;
}

bool check_close(double a, double b, double tol, const char* what) {
  if (std::abs(a - b) <= tol) return true;
  std::fprintf(stderr, "FAIL: %s differ: engine=%.17g reference=%.17g\n", what,
               a, b);
  return false;
}

// Engine-vs-reference posterior agreement after interleaved adds and a
// re-track (the smoke gate).
bool run_correctness(const Config& cfg) {
  Rng rng(7);
  env::GridSpec spec;
  spec.levels_per_dim = 3;  // 81 candidates — plenty for agreement checks
  env::ControlGrid grid(spec);
  const env::Context ctx{};
  const auto cand_vecs = grid.candidate_features(ctx);
  const auto cand_mat = std::make_shared<const linalg::Matrix>(
      grid.candidate_feature_matrix(ctx));

  gp::GpRegressor engine(make_kernel(), 1e-3);
  RefGp ref(make_kernel(), 1e-3);
  if (cfg.threads > 1) {
    engine.set_thread_pool(std::make_shared<common::ThreadPool>(cfg.threads));
  }

  const auto zs = draw_inputs(40, rng);
  Rng yrng(11);
  std::size_t added = 0;
  auto add_some = [&](std::size_t count) {
    for (std::size_t i = 0; i < count && added < zs.size(); ++i, ++added) {
      const double yv = yrng.normal();
      engine.add(zs[added], yv);
      ref.add(zs[added], yv);
    }
  };

  add_some(10);
  engine.track_candidates(cand_mat);
  ref.track(cand_vecs);
  add_some(15);
  // Context switch: re-track both, then keep folding.
  engine.track_candidates(cand_mat);
  ref.track(cand_vecs);
  add_some(15);

  bool ok = true;
  for (std::size_t j = 0; j < cand_vecs.size(); ++j) {
    ok &= check_close(engine.tracked_mean(j), ref.mean[j], 1e-9,
                      "tracked mean");
    ok &= check_close(engine.tracked_variance(j), std::max(0.0, ref.var[j]),
                      1e-9, "tracked variance");
    if (!ok) return false;
  }
  for (int q = 0; q < 25; ++q) {
    Vector zq(7);
    for (double& v : zq) v = rng.uniform();
    const gp::Prediction pe = engine.predict(zq);
    const gp::Prediction pr = ref.predict(zq);
    ok &= check_close(pe.mean, pr.mean, 1e-9, "predict mean");
    ok &= check_close(pe.variance, pr.variance, 1e-9, "predict variance");
    if (!ok) return false;
  }

  // Downdate path: evict first/middle/last observations from the engine and
  // compare its tracked posterior against a reference conditioned from
  // scratch on exactly the retained observations.
  engine.remove_observation(0);
  engine.remove_observation(engine.num_observations() / 2);
  engine.remove_observation(engine.num_observations() - 1);
  RefGp pruned(make_kernel(), 1e-3);
  for (std::size_t i = 0; i < engine.num_observations(); ++i) {
    pruned.add(engine.inputs()[i], engine.targets()[i]);
  }
  pruned.track(cand_vecs);
  for (std::size_t j = 0; j < cand_vecs.size(); ++j) {
    ok &= check_close(engine.tracked_mean(j), pruned.mean[j], 1e-9,
                      "post-evict tracked mean");
    ok &= check_close(engine.tracked_variance(j),
                      std::max(0.0, pruned.var[j]), 1e-9,
                      "post-evict tracked variance");
    if (!ok) return false;
  }
  return ok;
}

std::vector<PhaseResult> run_phases(const Config& cfg) {
  Rng rng(42);
  env::GridSpec spec;
  spec.levels_per_dim = cfg.grid_levels;
  env::ControlGrid grid(spec);
  const env::Context ctx{};
  const auto cand_vecs = grid.candidate_features(ctx);
  const auto cand_mat = std::make_shared<const linalg::Matrix>(
      grid.candidate_feature_matrix(ctx));
  const std::size_t m = grid.size();

  std::shared_ptr<common::ThreadPool> pool;
  if (cfg.threads > 1) pool = std::make_shared<common::ThreadPool>(cfg.threads);

  const auto zs = draw_inputs(cfg.n_obs, rng);
  Rng yrng(43);
  Vector ys(cfg.n_obs);
  for (double& v : ys) v = yrng.normal();

  // Conditioned engine + reference with tracking active.
  gp::GpRegressor engine(make_kernel(), 1e-3);
  engine.set_thread_pool(pool);
  RefGp ref(make_kernel(), 1e-3);
  for (std::size_t i = 0; i < cfg.n_obs; ++i) {
    engine.add(zs[i], ys[i]);
    ref.add(zs[i], ys[i]);
  }

  std::vector<PhaseResult> out;
  std::fprintf(stderr, "phases: n=%zu m=%zu threads=%zu reps=%d\n", cfg.n_obs,
               m, cfg.threads, cfg.reps);

  // -- track: O(m n^2) rebuild on context switch ----------------------------
  {
    PhaseResult p{"track", 0.0, 0.0};
    std::tie(p.baseline_ms, p.engine_ms) =
        timed_pair(cfg.reps, [&] { ref.track(cand_vecs); },
                   [&] { engine.track_candidates(cand_mat); });
    out.push_back(p);
  }

  // -- add: O(m n) per-period fold (tracking active from the phase above) ---
  {
    PhaseResult p{"add", 0.0, 0.0};
    const auto extra = draw_inputs(static_cast<std::size_t>(cfg.reps) * 2, rng);
    std::size_t bi = 0, ei = 0;
    std::tie(p.baseline_ms, p.engine_ms) =
        timed_pair(cfg.reps, [&] { ref.add(extra[bi++], 0.1); },
                   [&] { engine.add(extra[ei++], 0.1); });
    out.push_back(p);
  }

  // -- evict: drop the oldest observation, as a full budget does every
  //    period. Engine: Givens downdate O(n^2) + cache fold O(n m); baseline:
  //    refactor + full cache rebuild, O(n^3 + n^2 m) --------------------------
  {
    PhaseResult p{"evict", 0.0, 0.0};
    std::tie(p.baseline_ms, p.engine_ms) =
        timed_pair(cfg.reps, [&] { ref.evict_oldest(); },
                   [&] { engine.remove_observation(0); });
    out.push_back(p);
  }

  // -- predict: O(n^2) cold posterior, batched over queries ------------------
  {
    PhaseResult p{"predict", 0.0, 0.0};
    const std::size_t q = cfg.smoke ? 50 : 500;
    const auto queries = draw_inputs(q, rng);
    std::tie(p.baseline_ms, p.engine_ms) = timed_pair(
        cfg.reps,
        [&] {
          double acc = 0.0;
          for (const Vector& zq : queries) acc += ref.predict(zq).mean;
          g_sink = acc;
        },
        [&] {
          double acc = 0.0;
          for (const Vector& zq : queries) acc += engine.predict(zq).mean;
          g_sink = acc;
        });
    out.push_back(p);
  }

  // -- hyperopt: pre-production LML probes, serial vs pooled -----------------
  {
    PhaseResult p{"hyperopt", 0.0, 0.0};
    const std::size_t hn = cfg.smoke ? 20 : 60;
    const auto hz = draw_inputs(hn, rng);
    Vector hy(hn);
    for (double& v : hy) v = yrng.normal();
    gp::HyperoptOptions opts;
    opts.num_random_starts = cfg.smoke ? 8 : 24;
    opts.refine_rounds = cfg.smoke ? 1 : 2;
    gp::HyperoptOptions pooled_opts = opts;
    pooled_opts.pool = pool;
    std::tie(p.baseline_ms, p.engine_ms) = timed_pair(
        cfg.reps,
        [&] {
          Rng hrng(99);
          gp::fit_hyperparameters(hz, hy, hrng, opts);
        },
        [&] {
          Rng hrng(99);
          gp::fit_hyperparameters(hz, hy, hrng, pooled_opts);
        });
    out.push_back(p);
  }

  // -- full_period: 3 surrogates x (scan all m posteriors + fold one add) ----
  {
    PhaseResult p{"full_period", 0.0, 0.0};

    std::vector<RefGp> base_gps;
    std::vector<gp::GpRegressor> eng_gps;
    for (int s = 0; s < 3; ++s) {
      base_gps.emplace_back(make_kernel(), 1e-3);
      eng_gps.emplace_back(make_kernel(), 1e-3);
      for (std::size_t i = 0; i < cfg.n_obs; ++i) {
        base_gps.back().add(zs[i], ys[i]);
        eng_gps.back().add(zs[i], ys[i]);
      }
      base_gps.back().track(cand_vecs);
      eng_gps.back().set_thread_pool(pool);
      eng_gps.back().track_candidates(cand_mat);
    }
    const auto extra = draw_inputs(static_cast<std::size_t>(cfg.reps), rng);

    std::size_t bi = 0;
    std::size_t ei = 0;
    std::tie(p.baseline_ms, p.engine_ms) = timed_pair(
        cfg.reps,
        [&] {
          double acc = 0.0;
          for (RefGp& g : base_gps) {
            for (std::size_t j = 0; j < m; ++j) acc += g.mean[j] + g.var[j];
            g.add(extra[bi], 0.1);
          }
          ++bi;
          g_sink = acc;
        },
        [&] {
          double acc = 0.0;
          auto period = [&](gp::GpRegressor& g) {
            double local = 0.0;
            for (std::size_t j = 0; j < m; ++j) {
              const gp::Prediction pr = g.tracked_prediction(j);
              local += pr.mean + pr.variance;
            }
            g.add(extra[ei], 0.1);
            return local;
          };
          if (pool) {
            // The three surrogates update concurrently, as EdgeBol does.
            double a0 = 0.0, a1 = 0.0, a2 = 0.0;
            pool->run_tasks({[&] { a0 = period(eng_gps[0]); },
                             [&] { a1 = period(eng_gps[1]); },
                             [&] { a2 = period(eng_gps[2]); }});
            acc = a0 + a1 + a2;
          } else {
            for (auto& g : eng_gps) acc += period(g);
          }
          ++ei;
          g_sink = acc;
        });
    out.push_back(p);
  }

  return out;
}

void write_json(const Config& cfg, const std::vector<PhaseResult>& phases,
                std::size_t m) {
  std::ofstream os(cfg.out);
  os.precision(6);
  os << "{\n"
     << "  \"n_obs\": " << cfg.n_obs << ",\n"
     << "  \"n_candidates\": " << m << ",\n"
     << "  \"dims\": 7,\n"
     << "  \"threads\": " << cfg.threads << ",\n"
     << "  \"smoke\": " << (cfg.smoke ? "true" : "false") << ",\n"
     << "  \"phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    const double speedup =
        p.engine_ms > 0.0 ? p.baseline_ms / p.engine_ms : 0.0;
    os << "    {\"name\": \"" << p.name << "\", \"baseline_ms\": "
       << std::fixed << p.baseline_ms << ", \"engine_ms\": " << p.engine_ms
       << ", \"speedup\": " << speedup << "}"
       << (i + 1 < phases.size() ? "," : "") << "\n";
    os.unsetf(std::ios::fixed);
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      cfg.threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      cfg.out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--threads N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (cfg.smoke) {
    // Large enough that the engine's batching margin clears release-mode
    // scheduler jitter (the perf gate in scripts/check.sh fails below
    // 0.95x; the margin grows with the candidate count), small enough to
    // stay a few seconds.
    cfg.n_obs = 160;
    cfg.grid_levels = 9;  // 6,561 candidates
    // Best-of-9: baseline and engine are timed in separate windows, so on a
    // shared 1-vCPU box a steal burst can inflate every sample of one side.
    // More reps per side makes both minima far more likely to catch a clean
    // window each (check.sh additionally retries the whole gate).
    cfg.reps = 9;
  }

  if (!run_correctness(cfg)) {
    std::fprintf(stderr, "bench_micro_gp: engine/reference mismatch\n");
    return 1;
  }
  std::fprintf(stderr, "correctness: engine matches reference to 1e-9\n");

  const std::vector<PhaseResult> phases = run_phases(cfg);
  env::GridSpec spec;
  spec.levels_per_dim = cfg.grid_levels;
  const std::size_t m = spec.levels_per_dim * spec.levels_per_dim *
                        spec.levels_per_dim * spec.levels_per_dim;
  write_json(cfg, phases, m);

  for (const PhaseResult& p : phases) {
    std::fprintf(stderr, "%-12s baseline %10.3f ms   engine %10.3f ms   %.2fx\n",
                 p.name.c_str(), p.baseline_ms, p.engine_ms,
                 p.engine_ms > 0.0 ? p.baseline_ms / p.engine_ms : 0.0);
  }
  std::fprintf(stderr, "wrote %s\n", cfg.out.c_str());
  return 0;
}
