// Phase-by-phase benchmark harness for the GP posterior engine.
//
// Compares the batched, cache-packed engine (gp::GpRegressor) against a
// reference scalar implementation written the way the pre-batching engine
// worked: per-candidate std::vector<Vector> substitution columns, a virtual
// kernel call per point pair, and a fresh allocation per triangular solve.
// Both sides run the same math, so the smoke mode doubles as a correctness
// check (posteriors must agree to 1e-9).
//
// Phases (the decision loop's cost centers, see DESIGN.md "Performance
// model"):
//   track      O(m n^2)  tracked-cache rebuild on a context switch
//   add        O(m n)    per-period fold of one new observation
//   evict      O(m n)    budgeted removal: Givens downdate + cache fold
//                        (baseline refactors + rebuilds, O(n^3 + n^2 m))
//   predict    O(n^2)    cold posterior at a single point
//   hyperopt   O(S n^3)  pre-production LML probes (engine = pooled)
//   full_period          3 surrogates x (posterior scan + add), as EdgeBol
//                        runs every period in steady state
//   decide               one full decision (bound maintenance + safe set +
//                        acquisition) at the FULL 11^4 grid with the
//                        observation budget at 200: incremental engine
//                        (SafeSetTracker + FusedAcquisition) vs the legacy
//                        full rescan, under per-period budget churn with
//                        periodic re-tracks and threshold moves. Always runs
//                        at full size (even under --smoke) because the
//                        check.sh ceiling gate enforces p99 < 1 ms on it;
//                        engine decisions are asserted identical to the
//                        legacy rescan every iteration.
//
// Emits machine-readable JSON (default BENCH_gp.json):
//   { n_obs, n_candidates, dims, threads, smoke,
//     phases: [{name, baseline_ms, engine_ms, speedup}],
//     metrics: {decide_p50_ms_t1, decide_p99_ms_t1,
//               decide_p50_ms_t8, decide_p99_ms_t8} }
// The phases feed scripts/perf_gate.py's speedup mode; the metrics feed its
// --ceiling mode (absolute wall-clock bounds).
//
// Usage: bench_micro_gp [--smoke] [--threads N] [--out PATH]
//   --smoke    small sizes + engine-vs-reference correctness gate (CI).
//   --threads  engine-side pool size (default: hardware concurrency).

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <edgebol/edgebol.hpp>

namespace {

using namespace edgebol;
using linalg::Vector;

volatile double g_sink = 0.0;  // keeps timed loops from being optimized out

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Reference scalar engine (pre-batching idiom): one Vector per candidate
// column, virtual kernel evaluation per pair, allocating triangular solves.
// ---------------------------------------------------------------------------
struct RefGp {
  std::unique_ptr<gp::Kernel> kernel;
  double noise;
  std::vector<Vector> z;
  Vector y;
  linalg::CholeskyFactor chol;
  Vector w;

  std::vector<Vector> cands;
  std::vector<Vector> acol;  // acol[j][i] = (L^{-1} K(train, cand j))[i]
  Vector mean, var;

  RefGp(std::unique_ptr<gp::Kernel> k, double noise_var)
      : kernel(std::move(k)), noise(noise_var) {}

  void add(const Vector& zn, double yn) {
    const std::size_t n = z.size();
    Vector k(n);
    for (std::size_t i = 0; i < n; ++i) k[i] = (*kernel)(z[i], zn);
    chol.extend(k, (*kernel)(zn, zn) + noise);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += chol.entry(n, i) * w[i];
    const double pivot = chol.diag(n);
    const double wn = (yn - acc) / pivot;
    w.push_back(wn);
    for (std::size_t j = 0; j < cands.size(); ++j) {
      const double knew = (*kernel)(zn, cands[j]);
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) dot += chol.entry(n, i) * acol[j][i];
      const double an = (knew - dot) / pivot;
      acol[j].push_back(an);
      mean[j] += an * wn;
      var[j] -= an * an;
    }
    z.push_back(zn);
    y.push_back(yn);
  }

  void track(const std::vector<Vector>& cs) {
    cands = cs;
    const std::size_t m = cands.size(), n = z.size();
    acol.assign(m, Vector{});
    mean.assign(m, 0.0);
    var.assign(m, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      Vector k(n);
      for (std::size_t i = 0; i < n; ++i) k[i] = (*kernel)(z[i], cands[j]);
      acol[j] = chol.solve_lower(k);  // allocates, like the old engine
      double mu = 0.0, red = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        mu += acol[j][i] * w[i];
        red += acol[j][i] * acol[j][i];
      }
      mean[j] = mu;
      var[j] = (*kernel)(cands[j], cands[j]) - red;
    }
  }

  // Pre-downdate eviction idiom: drop the observation, refactor the full
  // Gram matrix from scratch (O(n^3)), and rebuild every cache (O(n^2 m)).
  void evict_oldest() {
    z.erase(z.begin());
    y.erase(y.begin());
    const std::size_t n = z.size();
    linalg::Matrix gram(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        gram(i, j) = gram(j, i) = (*kernel)(z[i], z[j]);
      }
      gram(i, i) += noise;
    }
    chol = linalg::CholeskyFactor(gram);
    w = chol.solve_lower(y);
    if (!cands.empty()) {
      const std::vector<Vector> cs = cands;
      track(cs);
    }
  }

  gp::Prediction predict(const Vector& zq) const {
    const std::size_t n = z.size();
    Vector k(n);
    for (std::size_t i = 0; i < n; ++i) k[i] = (*kernel)(z[i], zq);
    const Vector v = chol.solve_lower(k);
    double mu = 0.0, red = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mu += v[i] * w[i];
      red += v[i] * v[i];
    }
    return {mu, std::max(0.0, (*kernel)(zq, zq) - red)};
  }
};

std::unique_ptr<gp::Kernel> make_kernel() {
  return std::make_unique<gp::Matern32Kernel>(Vector(7, 1.2), 0.8);
}

struct PhaseResult {
  std::string name;
  double baseline_ms = 0.0;
  double engine_ms = 0.0;
};

struct Config {
  bool smoke = false;
  std::size_t threads = 0;  // 0 = hardware concurrency
  std::string out = "BENCH_gp.json";
  std::size_t n_obs = 200;
  std::size_t grid_levels = 11;  // 11^4 = 14,641 candidates
  int reps = 3;
};

// Times the two sides of a phase rep by rep (A, B, A, B, ...) and returns
// each side's fastest call in ms. Scheduler noise on a shared machine only
// ever inflates a sample, so the minimum is the tightest estimate of the
// true cost — and interleaving matters as much as best-of-N: timing all of
// A's reps then all of B's gives a CPU-steal burst a whole window to land
// on one side and skew the A/B ratio the CI perf gate checks, whereas
// alternating spreads both sides across the same measurement span so a
// clean rep of each is equally likely.
template <typename FnA, typename FnB>
std::pair<double, double> timed_pair(int reps, const FnA& fa, const FnB& fb) {
  double best_a = std::numeric_limits<double>::infinity();
  double best_b = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    double t0 = now_ms();
    fa();
    best_a = std::min(best_a, now_ms() - t0);
    t0 = now_ms();
    fb();
    best_b = std::min(best_b, now_ms() - t0);
  }
  return {best_a, best_b};
}

std::vector<Vector> draw_inputs(std::size_t n, Rng& rng) {
  std::vector<Vector> zs;
  zs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector z(7);
    for (double& v : z) v = rng.uniform();
    zs.push_back(std::move(z));
  }
  return zs;
}

bool check_close(double a, double b, double tol, const char* what) {
  if (std::abs(a - b) <= tol) return true;
  std::fprintf(stderr, "FAIL: %s differ: engine=%.17g reference=%.17g\n", what,
               a, b);
  return false;
}

// Engine-vs-reference posterior agreement after interleaved adds and a
// re-track (the smoke gate).
bool run_correctness(const Config& cfg) {
  Rng rng(7);
  env::GridSpec spec;
  spec.levels_per_dim = 3;  // 81 candidates — plenty for agreement checks
  env::ControlGrid grid(spec);
  const env::Context ctx{};
  const auto cand_vecs = grid.candidate_features(ctx);
  const auto cand_mat = std::make_shared<const linalg::Matrix>(
      grid.candidate_feature_matrix(ctx));

  gp::GpRegressor engine(make_kernel(), 1e-3);
  RefGp ref(make_kernel(), 1e-3);
  if (cfg.threads > 1) {
    engine.set_thread_pool(std::make_shared<common::ThreadPool>(cfg.threads));
  }

  const auto zs = draw_inputs(40, rng);
  Rng yrng(11);
  std::size_t added = 0;
  auto add_some = [&](std::size_t count) {
    for (std::size_t i = 0; i < count && added < zs.size(); ++i, ++added) {
      const double yv = yrng.normal();
      engine.add(zs[added], yv);
      ref.add(zs[added], yv);
    }
  };

  add_some(10);
  engine.track_candidates(cand_mat);
  ref.track(cand_vecs);
  add_some(15);
  // Context switch: re-track both, then keep folding.
  engine.track_candidates(cand_mat);
  ref.track(cand_vecs);
  add_some(15);

  bool ok = true;
  for (std::size_t j = 0; j < cand_vecs.size(); ++j) {
    ok &= check_close(engine.tracked_mean(j), ref.mean[j], 1e-9,
                      "tracked mean");
    ok &= check_close(engine.tracked_variance(j), std::max(0.0, ref.var[j]),
                      1e-9, "tracked variance");
    if (!ok) return false;
  }
  for (int q = 0; q < 25; ++q) {
    Vector zq(7);
    for (double& v : zq) v = rng.uniform();
    const gp::Prediction pe = engine.predict(zq);
    const gp::Prediction pr = ref.predict(zq);
    ok &= check_close(pe.mean, pr.mean, 1e-9, "predict mean");
    ok &= check_close(pe.variance, pr.variance, 1e-9, "predict variance");
    if (!ok) return false;
  }

  // Downdate path: evict first/middle/last observations from the engine and
  // compare its tracked posterior against a reference conditioned from
  // scratch on exactly the retained observations.
  engine.remove_observation(0);
  engine.remove_observation(engine.num_observations() / 2);
  engine.remove_observation(engine.num_observations() - 1);
  RefGp pruned(make_kernel(), 1e-3);
  for (std::size_t i = 0; i < engine.num_observations(); ++i) {
    pruned.add(engine.inputs()[i], engine.targets()[i]);
  }
  pruned.track(cand_vecs);
  for (std::size_t j = 0; j < cand_vecs.size(); ++j) {
    ok &= check_close(engine.tracked_mean(j), pruned.mean[j], 1e-9,
                      "post-evict tracked mean");
    ok &= check_close(engine.tracked_variance(j),
                      std::max(0.0, pruned.var[j]), 1e-9,
                      "post-evict tracked variance");
    if (!ok) return false;
  }
  return ok;
}

std::vector<PhaseResult> run_phases(const Config& cfg) {
  Rng rng(42);
  env::GridSpec spec;
  spec.levels_per_dim = cfg.grid_levels;
  env::ControlGrid grid(spec);
  const env::Context ctx{};
  const auto cand_vecs = grid.candidate_features(ctx);
  const auto cand_mat = std::make_shared<const linalg::Matrix>(
      grid.candidate_feature_matrix(ctx));
  const std::size_t m = grid.size();

  std::shared_ptr<common::ThreadPool> pool;
  if (cfg.threads > 1) pool = std::make_shared<common::ThreadPool>(cfg.threads);

  const auto zs = draw_inputs(cfg.n_obs, rng);
  Rng yrng(43);
  Vector ys(cfg.n_obs);
  for (double& v : ys) v = yrng.normal();

  // Conditioned engine + reference with tracking active.
  gp::GpRegressor engine(make_kernel(), 1e-3);
  engine.set_thread_pool(pool);
  RefGp ref(make_kernel(), 1e-3);
  for (std::size_t i = 0; i < cfg.n_obs; ++i) {
    engine.add(zs[i], ys[i]);
    ref.add(zs[i], ys[i]);
  }

  std::vector<PhaseResult> out;
  std::fprintf(stderr, "phases: n=%zu m=%zu threads=%zu reps=%d\n", cfg.n_obs,
               m, cfg.threads, cfg.reps);

  // -- track: O(m n^2) rebuild on context switch ----------------------------
  {
    PhaseResult p{"track", 0.0, 0.0};
    std::tie(p.baseline_ms, p.engine_ms) =
        timed_pair(cfg.reps, [&] { ref.track(cand_vecs); },
                   [&] { engine.track_candidates(cand_mat); });
    out.push_back(p);
  }

  // -- add: O(m n) per-period fold (tracking active from the phase above) ---
  {
    PhaseResult p{"add", 0.0, 0.0};
    const auto extra = draw_inputs(static_cast<std::size_t>(cfg.reps) * 2, rng);
    std::size_t bi = 0, ei = 0;
    std::tie(p.baseline_ms, p.engine_ms) =
        timed_pair(cfg.reps, [&] { ref.add(extra[bi++], 0.1); },
                   [&] { engine.add(extra[ei++], 0.1); });
    out.push_back(p);
  }

  // -- evict: drop the oldest observation, as a full budget does every
  //    period. Engine: Givens downdate O(n^2) + cache fold O(n m); baseline:
  //    refactor + full cache rebuild, O(n^3 + n^2 m) --------------------------
  {
    PhaseResult p{"evict", 0.0, 0.0};
    std::tie(p.baseline_ms, p.engine_ms) =
        timed_pair(cfg.reps, [&] { ref.evict_oldest(); },
                   [&] { engine.remove_observation(0); });
    out.push_back(p);
  }

  // -- predict: O(n^2) cold posterior, batched over queries ------------------
  {
    PhaseResult p{"predict", 0.0, 0.0};
    const std::size_t q = cfg.smoke ? 50 : 500;
    const auto queries = draw_inputs(q, rng);
    std::tie(p.baseline_ms, p.engine_ms) = timed_pair(
        cfg.reps,
        [&] {
          double acc = 0.0;
          for (const Vector& zq : queries) acc += ref.predict(zq).mean;
          g_sink = acc;
        },
        [&] {
          double acc = 0.0;
          for (const Vector& zq : queries) acc += engine.predict(zq).mean;
          g_sink = acc;
        });
    out.push_back(p);
  }

  // -- hyperopt: pre-production LML probes, serial vs pooled -----------------
  {
    PhaseResult p{"hyperopt", 0.0, 0.0};
    const std::size_t hn = cfg.smoke ? 20 : 60;
    const auto hz = draw_inputs(hn, rng);
    Vector hy(hn);
    for (double& v : hy) v = yrng.normal();
    gp::HyperoptOptions opts;
    opts.num_random_starts = cfg.smoke ? 8 : 24;
    opts.refine_rounds = cfg.smoke ? 1 : 2;
    gp::HyperoptOptions pooled_opts = opts;
    pooled_opts.pool = pool;
    std::tie(p.baseline_ms, p.engine_ms) = timed_pair(
        cfg.reps,
        [&] {
          Rng hrng(99);
          gp::fit_hyperparameters(hz, hy, hrng, opts);
        },
        [&] {
          Rng hrng(99);
          gp::fit_hyperparameters(hz, hy, hrng, pooled_opts);
        });
    out.push_back(p);
  }

  // -- full_period: 3 surrogates x (scan all m posteriors + fold one add) ----
  {
    PhaseResult p{"full_period", 0.0, 0.0};

    std::vector<RefGp> base_gps;
    std::vector<gp::GpRegressor> eng_gps;
    for (int s = 0; s < 3; ++s) {
      base_gps.emplace_back(make_kernel(), 1e-3);
      eng_gps.emplace_back(make_kernel(), 1e-3);
      for (std::size_t i = 0; i < cfg.n_obs; ++i) {
        base_gps.back().add(zs[i], ys[i]);
        eng_gps.back().add(zs[i], ys[i]);
      }
      base_gps.back().track(cand_vecs);
      eng_gps.back().set_thread_pool(pool);
      eng_gps.back().track_candidates(cand_mat);
    }
    const auto extra = draw_inputs(static_cast<std::size_t>(cfg.reps), rng);

    std::size_t bi = 0;
    std::size_t ei = 0;
    std::tie(p.baseline_ms, p.engine_ms) = timed_pair(
        cfg.reps,
        [&] {
          double acc = 0.0;
          for (RefGp& g : base_gps) {
            for (std::size_t j = 0; j < m; ++j) acc += g.mean[j] + g.var[j];
            g.add(extra[bi], 0.1);
          }
          ++bi;
          g_sink = acc;
        },
        [&] {
          double acc = 0.0;
          auto period = [&](gp::GpRegressor& g) {
            double local = 0.0;
            for (std::size_t j = 0; j < m; ++j) {
              const gp::Prediction pr = g.tracked_prediction(j);
              local += pr.mean + pr.variance;
            }
            g.add(extra[ei], 0.1);
            return local;
          };
          if (pool) {
            // The three surrogates update concurrently, as EdgeBol does.
            double a0 = 0.0, a1 = 0.0, a2 = 0.0;
            pool->run_tasks({[&] { a0 = period(eng_gps[0]); },
                             [&] { a1 = period(eng_gps[1]); },
                             [&] { a2 = period(eng_gps[2]); }});
            acc = a0 + a1 + a2;
          } else {
            for (auto& g : eng_gps) acc += period(g);
          }
          ++ei;
          g_sink = acc;
        });
    out.push_back(p);
  }

  return out;
}

// ---------------------------------------------------------------------------
// decide: the sub-millisecond decision gate. Three surrogates conditioned on
// exactly 200 observations track the full 11^4 grid; every iteration runs
// the incremental engine decision (SafeSetTracker + FusedAcquisition in one
// fused sweep) and the legacy full rescan (EdgeBol's pre-incremental path:
// materialize 3 x m posteriors, compute_safe_set, fallback loop,
// lcb_argmin), asserts the two decisions are identical, then churns the
// observation budget (one add + one evict per surrogate). Re-tracks every
// 37th iteration and threshold moves every 53rd keep full-rescore and
// frontier-rescore rounds in the latency distribution. The timed region is
// the decision only — context-switch re-tracking is the `track` phase's
// cost and happens between iterations.
// ---------------------------------------------------------------------------
struct DecideStats {
  double legacy_p50_ms = 0.0;
  double engine_p50_ms = 0.0;
  double engine_p99_ms = 0.0;
  bool ok = false;
};

// Nearest-rank percentile (q in (0, 1]); consumes a copy.
double percentile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  std::size_t rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(v.size())));
  rank = std::min(std::max<std::size_t>(rank, 1), v.size());
  return v[rank - 1];
}

DecideStats run_decide(std::size_t threads) {
  // Nearest-rank p99 needs enough samples that it is not simply the max:
  // 400 samples put p99 at the 5th largest, so up to four stray CPU-steal
  // spikes on a shared box cannot fail the ceiling gate on their own
  // (check.sh additionally retries). A decision is sub-millisecond, so the
  // sample count is not worth shrinking in smoke mode: 400 iterations of
  // engine + legacy at both thread counts cost well under a second.
  const int iters = 400;
  const std::size_t n_obs = 200;  // the gate's observation budget
  const double beta = 2.5;

  env::GridSpec spec;
  spec.levels_per_dim = 11;  // the gate always runs the full grid
  env::ControlGrid grid(spec);
  const env::Context ctx{};
  const auto cand_mat = std::make_shared<const linalg::Matrix>(
      grid.candidate_feature_matrix(ctx));
  const std::size_t m = grid.size();

  std::shared_ptr<common::ThreadPool> pool;
  if (threads > 1) pool = std::make_shared<common::ThreadPool>(threads);

  Rng rng(171);
  Rng yrng(172);
  gp::GpRegressor delay_gp(make_kernel(), 1e-3);
  gp::GpRegressor map_gp(make_kernel(), 1e-3);
  gp::GpRegressor cost_gp(make_kernel(), 1e-3);
  const std::array<gp::GpRegressor*, 3> gps{&delay_gp, &map_gp, &cost_gp};
  const auto zs = draw_inputs(n_obs, rng);
  for (gp::GpRegressor* g : gps) {
    g->set_thread_pool(pool);
    for (const Vector& z : zs) g->add(z, yrng.normal());
    g->track_candidates(cand_mat);
  }

  // Thresholds from the empirical bound quantiles so the safe set is mixed
  // (roughly half the grid passes each constraint) and a classification
  // frontier exists for the incremental path to track.
  std::vector<double> ucb(m), lcb(m);
  for (std::size_t j = 0; j < m; ++j) {
    const gp::Prediction d = delay_gp.tracked_prediction(j);
    const gp::Prediction q = map_gp.tracked_prediction(j);
    ucb[j] = d.mean + beta * d.stddev();
    lcb[j] = q.mean - beta * q.stddev();
  }
  double d_max = percentile(ucb, 0.55);
  double rho_min = percentile(lcb, 0.45);

  const std::vector<std::size_t> s0{0, m / 2};
  core::SafeSetTracker tracker;
  tracker.configure(m, 2);
  core::FusedAcquisition acq;
  acq.configure(m, s0);
  std::array<core::BoundSpec, 2> specs{};

  const auto engine_decide = [&] {
    specs[0] = core::BoundSpec{&delay_gp, /*upper=*/true, d_max, 0.0};
    specs[1] = core::BoundSpec{&map_gp, /*upper=*/false, rho_min, 0.0};
    return acq.decide(core::FusedAcquisitionKind::kSafeLcb, tracker, specs,
                      cost_gp, beta, pool.get());
  };
  const auto legacy_decide = [&] {
    std::vector<gp::Prediction> delay_post(m), map_post(m), cost_post(m);
    for (std::size_t j = 0; j < m; ++j) {
      delay_post[j] = delay_gp.tracked_prediction(j);
      map_post[j] = map_gp.tracked_prediction(j);
      cost_post[j] = cost_gp.tracked_prediction(j);
    }
    const std::vector<std::size_t> safe =
        core::compute_safe_set(delay_post, map_post, d_max, rho_min, beta, s0);
    bool fell_back = true;
    for (std::size_t i : safe) {
      const bool in_s0 = std::find(s0.begin(), s0.end(), i) != s0.end();
      const gp::Prediction& d = delay_post[i];
      const gp::Prediction& q = map_post[i];
      const bool qualified = d.mean + beta * d.stddev() <= d_max &&
                             q.mean - beta * q.stddev() >= rho_min;
      if (qualified || !in_s0) {
        fell_back = false;
        break;
      }
    }
    core::FusedDecision r;
    r.index = core::lcb_argmin(cost_post, safe, beta);
    r.safe_set_size = safe.size();
    r.fell_back_to_s0 = fell_back;
    return r;
  };

  DecideStats stats;

  // Untimed warmup: the first round is a mandatory full rescore and also
  // first-touches the tracker's bound/slack arrays; neither is a steady-state
  // decision cost (retrack-forced full rounds stay in the timed loop).
  for (int w = 0; w < 2; ++w) {
    const core::FusedDecision eng = engine_decide();
    const core::FusedDecision leg = legacy_decide();
    if (eng.index != leg.index || eng.safe_set_size != leg.safe_set_size ||
        eng.fell_back_to_s0 != leg.fell_back_to_s0) {
      std::fprintf(stderr, "FAIL: decide mismatch in warmup (threads=%zu)\n",
                   threads);
      return stats;
    }
  }

  const auto extra = draw_inputs(static_cast<std::size_t>(iters), rng);
  std::vector<double> eng_ms, leg_ms;
  eng_ms.reserve(static_cast<std::size_t>(iters));
  leg_ms.reserve(static_cast<std::size_t>(iters));
  for (int it = 0; it < iters; ++it) {
    if (it % 37 == 17) {
      for (gp::GpRegressor* g : gps) g->track_candidates(cand_mat);
    }
    if (it % 53 == 29) {
      d_max += ((it & 2) != 0 ? 1.0 : -1.0) * 5e-3;
      rho_min += ((it & 4) != 0 ? 1.0 : -1.0) * 5e-3;
    }

    double t0 = now_ms();
    const core::FusedDecision eng = engine_decide();
    eng_ms.push_back(now_ms() - t0);
    t0 = now_ms();
    const core::FusedDecision leg = legacy_decide();
    leg_ms.push_back(now_ms() - t0);
    g_sink = static_cast<double>(eng.index);
    if (std::getenv("DECIDE_TRACE") != nullptr) {
      std::fprintf(stderr, "it=%d eng=%.3f leg=%.3f rescored=%zu\n", it,
                   eng_ms.back(), leg_ms.back(), tracker.last_rescored());
    }

    if (eng.index != leg.index || eng.safe_set_size != leg.safe_set_size ||
        eng.fell_back_to_s0 != leg.fell_back_to_s0) {
      std::fprintf(stderr,
                   "FAIL: decide mismatch at iter %d (threads=%zu): engine "
                   "{%zu, %zu, %d} legacy {%zu, %zu, %d}\n",
                   it, threads, eng.index, eng.safe_set_size,
                   static_cast<int>(eng.fell_back_to_s0), leg.index,
                   leg.safe_set_size, static_cast<int>(leg.fell_back_to_s0));
      return stats;
    }

    // Budget churn: fold one observation in and evict the oldest, keeping
    // the budget pinned at 200 — the steady state the gate models.
    for (gp::GpRegressor* g : gps) {
      g->add(extra[static_cast<std::size_t>(it)], 0.05 * yrng.normal());
      g->remove_observation(0);
    }
  }

  stats.legacy_p50_ms = percentile(leg_ms, 0.50);
  stats.engine_p50_ms = percentile(eng_ms, 0.50);
  stats.engine_p99_ms = percentile(eng_ms, 0.99);
  stats.ok = true;
  std::fprintf(stderr,
               "decide (t%zu): engine p50 %.3f ms p99 %.3f ms   legacy p50 "
               "%.3f ms   rescored(last) %zu/%zu\n",
               threads, stats.engine_p50_ms, stats.engine_p99_ms,
               stats.legacy_p50_ms, tracker.last_rescored(), m);
  return stats;
}

void write_json(const Config& cfg, const std::vector<PhaseResult>& phases,
                std::size_t m,
                const std::vector<std::pair<std::string, double>>& metrics) {
  std::ofstream os(cfg.out);
  os.precision(6);
  os << "{\n"
     << "  \"n_obs\": " << cfg.n_obs << ",\n"
     << "  \"n_candidates\": " << m << ",\n"
     << "  \"dims\": 7,\n"
     << "  \"threads\": " << cfg.threads << ",\n"
     << "  \"smoke\": " << (cfg.smoke ? "true" : "false") << ",\n"
     << "  \"phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    const double speedup =
        p.engine_ms > 0.0 ? p.baseline_ms / p.engine_ms : 0.0;
    os << "    {\"name\": \"" << p.name << "\", \"baseline_ms\": "
       << std::fixed << p.baseline_ms << ", \"engine_ms\": " << p.engine_ms
       << ", \"speedup\": " << speedup << "}"
       << (i + 1 < phases.size() ? "," : "") << "\n";
    os.unsetf(std::ios::fixed);
  }
  os << "  ],\n"
     << "  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    os << "    \"" << metrics[i].first << "\": " << std::fixed
       << metrics[i].second << (i + 1 < metrics.size() ? "," : "") << "\n";
    os.unsetf(std::ios::fixed);
  }
  os << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      cfg.threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      cfg.out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--threads N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (cfg.smoke) {
    // Large enough that the engine's batching margin clears release-mode
    // scheduler jitter (the perf gate in scripts/check.sh fails below
    // 0.95x; the margin grows with the candidate count), small enough to
    // stay a few seconds.
    cfg.n_obs = 160;
    cfg.grid_levels = 9;  // 6,561 candidates
    // Best-of-9: baseline and engine are timed in separate windows, so on a
    // shared 1-vCPU box a steal burst can inflate every sample of one side.
    // More reps per side makes both minima far more likely to catch a clean
    // window each (check.sh additionally retries the whole gate).
    cfg.reps = 9;
  }

  if (!run_correctness(cfg)) {
    std::fprintf(stderr, "bench_micro_gp: engine/reference mismatch\n");
    return 1;
  }
  std::fprintf(stderr, "correctness: engine matches reference to 1e-9\n");

  std::vector<PhaseResult> phases = run_phases(cfg);

  const DecideStats t1 = run_decide(1);
  const DecideStats t8 = run_decide(8);
  if (!t1.ok || !t8.ok) {
    std::fprintf(stderr, "bench_micro_gp: decide engine/legacy mismatch\n");
    return 1;
  }
  phases.push_back(PhaseResult{"decide", t1.legacy_p50_ms, t1.engine_p50_ms});
  const std::vector<std::pair<std::string, double>> metrics{
      {"decide_p50_ms_t1", t1.engine_p50_ms},
      {"decide_p99_ms_t1", t1.engine_p99_ms},
      {"decide_p50_ms_t8", t8.engine_p50_ms},
      {"decide_p99_ms_t8", t8.engine_p99_ms},
  };

  env::GridSpec spec;
  spec.levels_per_dim = cfg.grid_levels;
  const std::size_t m = spec.levels_per_dim * spec.levels_per_dim *
                        spec.levels_per_dim * spec.levels_per_dim;
  write_json(cfg, phases, m, metrics);

  for (const PhaseResult& p : phases) {
    std::fprintf(stderr, "%-12s baseline %10.3f ms   engine %10.3f ms   %.2fx\n",
                 p.name.c_str(), p.baseline_ms, p.engine_ms,
                 p.engine_ms > 0.0 ? p.baseline_ms / p.engine_ms : 0.0);
  }
  std::fprintf(stderr, "wrote %s\n", cfg.out.c_str());
  return 0;
}
