// Microbenchmarks (google-benchmark) for the performance-critical kernels:
// GP conditioning and prediction (eqs. 3-4), tracked-candidate updates over
// the 11^4 control grid, Cholesky extension, and one full testbed period.
// These justify the §5 claim that posterior updates fit comfortably within
// an O-RAN non-RT control period (seconds).

#include <benchmark/benchmark.h>

#include <edgebol/edgebol.hpp>

namespace {

using namespace edgebol;

gp::GpRegressor make_gp(std::size_t n_obs, Rng& rng) {
  gp::GpRegressor gp(
      std::make_unique<gp::Matern32Kernel>(linalg::Vector(7, 1.0), 1.0),
      1e-3);
  for (std::size_t i = 0; i < n_obs; ++i) {
    linalg::Vector z(7);
    for (double& v : z) v = rng.uniform();
    gp.add(z, rng.normal());
  }
  return gp;
}

void BM_KernelEval(benchmark::State& state) {
  const gp::Matern32Kernel k(linalg::Vector(7, 1.0), 1.0);
  Rng rng(1);
  linalg::Vector a(7), b(7);
  for (double& v : a) v = rng.uniform();
  for (double& v : b) v = rng.uniform();
  for (auto _ : state) benchmark::DoNotOptimize(k(a, b));
}
BENCHMARK(BM_KernelEval);

void BM_GpAddObservation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    gp::GpRegressor gp = make_gp(n, rng);
    linalg::Vector z(7);
    for (double& v : z) v = rng.uniform();
    state.ResumeTiming();
    gp.add(z, 0.5);
  }
}
BENCHMARK(BM_GpAddObservation)->Arg(50)->Arg(150)->Arg(400);

void BM_GpPredict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  gp::GpRegressor gp = make_gp(n, rng);
  linalg::Vector z(7, 0.5);
  for (auto _ : state) benchmark::DoNotOptimize(gp.predict(z));
}
BENCHMARK(BM_GpPredict)->Arg(50)->Arg(150)->Arg(400);

void BM_TrackedUpdateFullGrid(benchmark::State& state) {
  // One add() with the full 11^4 candidate grid tracked — the per-period
  // cost of keeping the whole control space scored.
  Rng rng(4);
  gp::GpRegressor gp = make_gp(100, rng);
  env::ControlGrid grid;
  gp.track_candidates(grid.candidate_features(env::Context{}));
  linalg::Vector z(7, 0.4);
  for (auto _ : state) {
    gp.add(z, 0.1);
    benchmark::DoNotOptimize(gp.tracked_mean(0));
  }
}
BENCHMARK(BM_TrackedUpdateFullGrid)->Unit(benchmark::kMillisecond);

void BM_CholeskyExtend(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    linalg::CholeskyFactor f;
    state.ResumeTiming();
    for (std::size_t k = 0; k < n; ++k) {
      linalg::Vector col(k, 0.1);
      f.extend(col, 2.0 + rng.uniform());
    }
  }
}
BENCHMARK(BM_CholeskyExtend)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_PipelineSolve(benchmark::State& state) {
  service::PipelineInputs in;
  for (int u = 0; u < 4; ++u) {
    service::PipelineUser user;
    user.solo_app_rate_bps = 3e6;
    user.solo_phy_rate_bps = 30e6;
    user.spectral_eff = 3.0;
    user.eff_mcs = 16.0;
    in.users.push_back(user);
  }
  in.image_bits = 0.6e6;
  in.preprocess_s = 0.03;
  in.response_bits = 24e3;
  in.grant_latency_s = 0.01;
  in.gpu_service_s = 0.12;
  in.airtime = 0.8;
  for (auto _ : state) benchmark::DoNotOptimize(service::solve_pipeline(in));
}
BENCHMARK(BM_PipelineSolve);

void BM_TestbedStep(benchmark::State& state) {
  env::Testbed tb = env::make_heterogeneous_testbed(4);
  env::ControlPolicy p;
  for (auto _ : state) benchmark::DoNotOptimize(tb.step(p));
}
BENCHMARK(BM_TestbedStep);

void BM_EdgeBolSelectFullGrid(benchmark::State& state) {
  env::Testbed tb = env::make_static_testbed(35.0);
  core::EdgeBol agent(env::ControlGrid{}, core::EdgeBolConfig{});
  // Warm up with observations so select() exercises real posteriors.
  for (int t = 0; t < 30; ++t) {
    const env::Context c = tb.context();
    const core::Decision d = agent.select(c);
    agent.update(c, d.policy_index, tb.step(d.policy));
  }
  const env::Context c = tb.context();
  for (auto _ : state) benchmark::DoNotOptimize(agent.select(c));
}
BENCHMARK(BM_EdgeBolSelectFullGrid)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
