// Model validation — fluid pipeline vs discrete-event simulation.
//
// The learning experiments evaluate ~10^4 policies per period with the
// fluid fixed-point model; this bench quantifies its fidelity against the
// per-subframe discrete-event simulator across a sample of the policy
// space and user populations, reporting the relative errors of delay,
// frame rate, GPU utilization and BS duty.

#include <iostream>

#include "bench_common.hpp"

#include "env/event_sim.hpp"

int main(int argc, char** argv) {
  using namespace edgebol;
  using namespace edgebol::bench;

  const int samples = argc > 1 ? std::max(4, std::atoi(argv[1])) : 16;

  banner(std::cout, "Model validation: fluid pipeline vs event simulation");

  env::GridSpec spec;
  spec.levels_per_dim = 5;
  const env::ControlGrid grid(spec);
  Rng rng(42);

  Table t({"users", "res", "air", "gpu", "mcs", "delay_err_pct",
           "rate_err_pct", "gpu_util_err_pct", "bs_duty_err_pct"});
  RunningStats delay_err, rate_err;

  for (int s = 0; s < samples; ++s) {
    const std::size_t n_users = 1 + rng.uniform_index(3);
    std::vector<double> snrs;
    for (std::size_t u = 0; u < n_users; ++u) {
      snrs.push_back(rng.uniform(18.0, 36.0));
    }
    const env::ControlPolicy& p = grid.policy(rng.uniform_index(grid.size()));

    env::TestbedConfig cfg;
    std::vector<ran::UeChannel> users;
    for (double snr : snrs) {
      users.emplace_back(std::make_unique<ran::ConstantSnr>(snr), 0.0, 0.5);
    }
    env::Testbed tb(cfg, std::move(users));
    const env::Measurement fl = tb.expected(p);

    env::EventSimConfig sim;
    sim.duration_s = 60.0;
    sim.warmup_s = 10.0;
    const env::EventSimResult ev = env::simulate_events(cfg, snrs, p, sim);

    double worst_ev = 0.0;
    for (double d : ev.mean_delay_s) worst_ev = std::max(worst_ev, d);
    auto err_pct = [](double model, double truth) {
      return truth > 1e-9 ? 100.0 * (model - truth) / truth : 0.0;
    };
    const double de = err_pct(fl.delay_s, worst_ev);
    const double re = err_pct(fl.total_frame_rate_hz, ev.total_frame_rate_hz);
    delay_err.add(std::abs(de));
    rate_err.add(std::abs(re));
    t.add_row({fmt(static_cast<double>(n_users), 0), fmt(p.resolution, 2),
               fmt(p.airtime, 2), fmt(p.gpu_speed, 2), fmt(p.mcs_cap, 0),
               fmt(de, 1), fmt(re, 1),
               fmt(err_pct(fl.gpu_utilization, ev.gpu_busy_fraction), 1),
               fmt(err_pct(fl.bs_duty, ev.bs_busy_fraction), 1)});
  }
  t.print(std::cout);

  std::cout << "\nmean |delay error| = " << fmt(delay_err.mean(), 1)
            << "%, mean |rate error| = " << fmt(rate_err.mean(), 1)
            << "%\nExpectation: single-digit errors for uncontended "
               "configurations; up to ~20-25% (conservative side) when the "
               "GPU saturates under multi-user load.\n";
  return 0;
}
