// Ablation — sensitivity to the confidence parameter beta^(1/2) (the paper
// fixes 2.5, citing [8, 20]). Small beta explores aggressively but violates
// the service constraints; large beta is safe but conservative (higher cost,
// slower safe-set growth). This bench quantifies that trade-off.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace edgebol;
  using namespace edgebol::bench;

  const int periods = 150;
  const int reps = argc > 1 ? std::max(1, std::atoi(argv[1])) : 3;

  banner(std::cout, "Ablation: beta^(1/2) sensitivity");
  std::cout << "(" << reps << " repetitions; delta2 = 8, d_max = 0.4 s, "
            << "rho_min = 0.5)\n\n";

  Table t({"beta_sqrt", "converged_cost", "violation_rate",
           "final_safe_set", "periods_to_within_5pct"});

  for (double beta : {0.5, 1.0, 1.5, 2.5, 4.0, 6.0}) {
    RunningStats conv, viol, safe, speed;
    for (int rep = 0; rep < reps; ++rep) {
      env::TestbedConfig tcfg;
      tcfg.seed = 7800 + static_cast<std::uint64_t>(rep);
      env::Testbed tb = env::make_static_testbed(35.0, tcfg);
      core::EdgeBolConfig cfg;
      cfg.weights = {1.0, 8.0};
      cfg.constraints = {0.4, 0.5};
      cfg.beta_sqrt = beta;
      core::EdgeBol agent(env::ControlGrid{}, cfg);
      const Trajectory tr = run_edgebol(tb, agent, periods);

      const double converged = tail_mean(tr.cost, 30);
      conv.add(converged);
      int v = 0;
      for (std::size_t ti = 0; ti < tr.delay_s.size(); ++ti) {
        v += tr.delay_s[ti] > 0.4 * 1.05 || tr.map[ti] < 0.5 - 0.03;
      }
      viol.add(static_cast<double>(v) / periods);
      safe.add(tr.safe_set_size.back());
      int reach = periods;
      for (int ti = 0; ti < periods; ++ti) {
        if (tr.cost[ti] <= converged * 1.05) {
          reach = ti;
          break;
        }
      }
      speed.add(reach);
    }
    t.add_row({fmt(beta, 1), fmt(conv.mean(), 1), fmt(viol.mean(), 3),
               fmt(safe.mean(), 0), fmt(speed.mean(), 0)});
  }
  t.print(std::cout);

  std::cout << "\nExpectation: violation rate falls as beta grows; cost and "
               "time-to-converge grow for very large beta; beta^(1/2) = 2.5 "
               "sits at the knee — matching the paper's choice.\n";
  return 0;
}
