// Fig. 14 — EdgeBOL vs a DDPG contextual-bandit benchmark (after vrAIn [4])
// under runtime constraint changes:
//   t in [0, 1000):    d_max = 0.5 s, rho_min = 0.4
//   t in [1000, 2000): d_max = 0.4 s, rho_min = 0.6
//   t in [2000, 3000): d_max = 0.5 s, rho_min = 0.5
// Reports the evolution of cost, delay, mAP, and the per-window constraint
// violation magnitudes for both agents (delta1 = 1, delta2 = 8).
//
// Uses a 7-level control grid for EdgeBOL (3000-period GP memory); DDPG
// operates on the continuous policy box as in the paper.

#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace edgebol;

struct WindowStats {
  RunningStats cost, delay, map, delay_violation, map_violation;
};

core::ConstraintSpec constraints_at(int t) {
  if (t < 1000) return {0.5, 0.4};
  if (t < 2000) return {0.4, 0.6};
  return {0.5, 0.5};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edgebol;
  using namespace edgebol::bench;

  const int periods = argc > 1 ? std::max(300, std::atoi(argv[1])) : 3000;
  const int window = 100;

  banner(std::cout, "Fig. 14: EdgeBOL vs DDPG under constraint switches");
  std::cout << "(" << periods << " periods; constraint switches at t=1000 "
            << "and t=2000; values are per-" << window << "-period means)\n";

  const core::CostWeights weights{1.0, 8.0};

  env::GridSpec spec;
  spec.levels_per_dim = 7;

  // --- EdgeBOL ---
  env::TestbedConfig cfg_a;
  cfg_a.seed = 6001;
  env::Testbed tb_a = env::make_static_testbed(35.0, cfg_a);
  core::EdgeBolConfig bcfg;
  bcfg.weights = weights;
  bcfg.constraints = constraints_at(0);
  core::EdgeBol edgebol(env::ControlGrid{spec}, bcfg);

  // --- DDPG ---
  env::TestbedConfig cfg_b;
  cfg_b.seed = 6001;
  env::Testbed tb_b = env::make_static_testbed(35.0, cfg_b);
  baselines::DdpgConfig dcfg;
  baselines::DdpgAgent ddpg(spec, weights, constraints_at(0), dcfg, 77);

  std::vector<WindowStats> eb((periods + window - 1) / window);
  std::vector<WindowStats> dd(eb.size());

  for (int t = 0; t < periods; ++t) {
    const core::ConstraintSpec cs = constraints_at(t);
    if (t == 1000 || t == 2000) {
      edgebol.set_constraints(cs);
      ddpg.set_constraints(cs);
    }
    const std::size_t wi = static_cast<std::size_t>(t / window);

    {
      const env::Context c = tb_a.context();
      const core::Decision d = edgebol.select(c);
      const env::Measurement m = tb_a.step(d.policy);
      edgebol.update(c, d.policy_index, m);
      eb[wi].cost.add(weights.cost(m.server_power_w, m.bs_power_w));
      eb[wi].delay.add(m.delay_s);
      eb[wi].map.add(m.map);
      eb[wi].delay_violation.add(std::max(0.0, m.delay_s - cs.d_max_s));
      eb[wi].map_violation.add(std::max(0.0, cs.map_min - m.map));
    }
    {
      const env::Context c = tb_b.context();
      const env::ControlPolicy p = ddpg.select(c);
      const env::Measurement m = tb_b.step(p);
      ddpg.update(c, p, m);
      dd[wi].cost.add(weights.cost(m.server_power_w, m.bs_power_w));
      dd[wi].delay.add(m.delay_s);
      dd[wi].map.add(m.map);
      dd[wi].delay_violation.add(std::max(0.0, m.delay_s - cs.d_max_s));
      dd[wi].map_violation.add(std::max(0.0, cs.map_min - m.map));
    }
  }

  Table t({"t", "d_max", "rho_min", "EB_cost", "DDPG_cost", "EB_delay",
           "DDPG_delay", "EB_mAP", "DDPG_mAP", "EB_dviol", "DDPG_dviol",
           "EB_mviol", "DDPG_mviol"});
  for (std::size_t wi = 0; wi < eb.size(); ++wi) {
    const int ti = static_cast<int>(wi) * window;
    const core::ConstraintSpec cs = constraints_at(ti);
    t.add_row({fmt(ti, 0), fmt(cs.d_max_s, 2), fmt(cs.map_min, 2),
               fmt(eb[wi].cost.mean(), 1), fmt(dd[wi].cost.mean(), 1),
               fmt(eb[wi].delay.mean(), 3), fmt(dd[wi].delay.mean(), 3),
               fmt(eb[wi].map.mean(), 3), fmt(dd[wi].map.mean(), 3),
               fmt(eb[wi].delay_violation.mean(), 3),
               fmt(dd[wi].delay_violation.mean(), 3),
               fmt(eb[wi].map_violation.mean(), 3),
               fmt(dd[wi].map_violation.mean(), 3)});
  }
  t.print(std::cout);

  std::cout << "\nShape check (paper): EdgeBOL respects the constraints "
               "almost immediately — including right after each switch — "
               "because safe sets are recomputed from the non-parametric "
               "surrogates; the DDPG benchmark converges far more slowly "
               "and keeps violating after constraint changes (parametric "
               "models must re-learn).\n";
  return 0;
}
