#!/usr/bin/env python3
"""Regression suite for scripts/invariant_lint.py over tests/lint_corpus/.

Each corpus file is a .cc fixture (never compiled, never linted as repo
source) carrying two kinds of markers:

    // lint-as: <virtual repo path>
        The path the linter should believe the file lives at — rules are
        path-sensitive (src/ vs bench/, the socket.*/sync.* exemptions,
        hpp/cpp component pairing for the guarded-member rule).

    ... lint-expect: <rule>[, <rule>]
        On every line that must be reported, naming the rule tag(s) the
        linter prints in brackets ([rng], [alloc], [guarded], ...).

All fixtures are analyzed in ONE batch (so an .hpp/.cpp pair shares its
EB_GUARDED_BY / EB_REQUIRES maps) and the reported (file, line, rule) set
must equal the expected set exactly: every miss is a false negative,
every extra a false positive — both fail the test with a labelled diff.

A lexer sanity pass also asserts the stripped twin of each fixture keeps
its line count, since every rule's line numbers depend on that.
"""

import importlib.util
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORPUS = os.path.join(REPO, "tests", "lint_corpus")

_spec = importlib.util.spec_from_file_location(
    "invariant_lint", os.path.join(REPO, "scripts", "invariant_lint.py"))
invariant_lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(invariant_lint)

LINT_AS = re.compile(r"//\s*lint-as:\s*(\S+)")
LINT_EXPECT = re.compile(r"lint-expect:\s*([A-Za-z_]\w*(?:\s*,\s*\w+)*)")
REPORT = re.compile(r"(.+?):(\d+): \[(\w+)\]")


def main() -> int:
    sources = []
    expected = set()
    names = sorted(f for f in os.listdir(CORPUS) if f.endswith(".cc"))
    if not names:
        print(f"lint selftest: no corpus files in {CORPUS}", file=sys.stderr)
        return 1
    failures = []
    for name in names:
        with open(os.path.join(CORPUS, name), encoding="utf-8") as f:
            raw = f.read()
        m = LINT_AS.search(raw)
        if not m:
            failures.append(f"{name}: missing '// lint-as: <path>' marker")
            continue
        vpath = m.group(1).replace("/", os.sep)
        src = invariant_lint.Source(vpath, raw)
        if src.code.count("\n") != raw.count("\n"):
            failures.append(
                f"{name}: lexer changed the line count "
                f"({raw.count(chr(10))} -> {src.code.count(chr(10))})")
        sources.append(src)
        for lineno, line in enumerate(raw.splitlines(), start=1):
            em = LINT_EXPECT.search(line)
            if em:
                for rule in re.findall(r"\w+", em.group(1)):
                    expected.add((vpath, lineno, rule))

    actual = set()
    for err in invariant_lint.analyze_sources(sources):
        m = REPORT.match(err)
        if not m:
            failures.append(f"unparsable report: {err}")
            continue
        actual.add((m.group(1), int(m.group(2)), m.group(3)))

    for path, line, rule in sorted(expected - actual):
        failures.append(
            f"FALSE NEGATIVE: expected [{rule}] at {path}:{line}, "
            "not reported")
    for path, line, rule in sorted(actual - expected):
        failures.append(
            f"FALSE POSITIVE: unexpected [{rule}] at {path}:{line}")

    if failures:
        for f_ in failures:
            print(f_)
        print(f"lint selftest: FAILED ({len(failures)} problem(s), "
              f"{len(names)} fixtures)", file=sys.stderr)
        return 1
    print(f"lint selftest: ok ({len(names)} fixtures, "
          f"{len(expected)} seeded violations all matched)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
