#!/usr/bin/env python3
"""Project-specific invariant lints the compiler cannot enforce.

Rules (see DESIGN.md "Concurrency invariants & analysis tooling"):

  R1 determinism   std::rand / std::random_device / srand are forbidden
                   everywhere except src/common/rng.* — all randomness must
                   flow through the seeded project RNG so runs replay
                   bit-identically.
  R2 allocation    raw `new` / `delete` are forbidden outside src/linalg and
                   src/common — everything else goes through containers or
                   the linalg/common owners (`= delete`d special members are
                   of course fine).
  R3 telemetry     std::cout is forbidden in src/ — library code reports via
                   telemetry / return values; stream output belongs to
                   bench/, examples/, tests/ and tools taking an ostream.
  R4 headers       every .hpp under src/ and include/ must be self-contained:
                   a TU consisting of just `#include "x.hpp"` compiles.
  R5 sync comment  every ThreadPool dispatch (`parallel_for` / `run_tasks`)
                   in src/ must carry a `// sync:` comment within the 10
                   lines above the call naming why the shared state it
                   touches is safe (disjoint writes, guarded by which mutex,
                   join-before-read, ...). Mutable state captured by
                   reference without a stated discipline is how silent races
                   land.
  R6 syscalls      ::-qualified socket/fd syscalls (::socket, ::connect,
                   ::read, ::readv, ::writev, ::poll, ::epoll_create1,
                   ::epoll_ctl, ::epoll_wait, ...) are forbidden outside
                   src/net/socket.* — everything rides the EINTR-safe
                   wrappers there (the epoll backend included: no other
                   file under src/net/ may touch the epoll fd directly).
                   Inside socket.*, every blocking-capable call site
                   (::epoll_wait and the batched ::readv/::writev
                   included) must mention EINTR within 8 lines either
                   way: a raw syscall without a stated interruption story
                   is a hang or a lost frame waiting for a signal to land.
  R7 hot regions   between a named `// hot: <name>` marker (decide,
                   dispatch, ...) and its closing
                   `// hot: end` in src/, heap-allocating constructs
                   (new, push_back, emplace_back, resize, reserve, assign,
                   make_shared, make_unique, std::vector<, std::string,
                   std::function) are forbidden: the sub-millisecond
                   decision loop (SafeSetTracker / FusedAcquisition sweeps)
                   must stay allocation-free past configure(). Unbalanced
                   markers are themselves violations.

Usage:
    scripts/invariant_lint.py [--skip-header-check] [paths...]

Exits 0 when clean; 1 with one `file:line: [rule] message` per violation.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CODE_DIRS = ["src", "bench", "tests", "examples", "tools"]
CXX = os.environ.get("CXX", "g++")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string literals, and char literals, preserving
    newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def rel(path: str) -> str:
    return os.path.relpath(path, REPO)


def iter_sources(paths, exts=(".cpp", ".hpp")):
    for root in paths:
        for dirpath, _dirs, files in os.walk(root):
            for f in sorted(files):
                if f.endswith(exts):
                    yield os.path.join(dirpath, f)


def check_rng(path, code, errors):
    if rel(path).startswith(os.path.join("src", "common", "rng")):
        return
    for m in re.finditer(r"\bstd::rand\b|\brandom_device\b|\bsrand\s*\(", code):
        line = code.count("\n", 0, m.start()) + 1
        errors.append(f"{rel(path)}:{line}: [rng] '{m.group(0)}' outside "
                      "src/common/rng.* — use edgebol::common::Rng")


def check_new_delete(path, code, errors):
    r = rel(path)
    if r.startswith(os.path.join("src", "linalg")) or \
       r.startswith(os.path.join("src", "common")):
        return
    # `new Type(...)` / `new Type[...]` — require an identifier after `new`
    # so `= delete`, placement-new-free code, and words like `renew` don't
    # trip it.
    for m in re.finditer(r"\bnew\s+[A-Za-z_:][\w:<>, ]*[\[(;{]?", code):
        line = code.count("\n", 0, m.start()) + 1
        errors.append(f"{r}:{line}: [alloc] raw 'new' outside linalg/common "
                      "— use containers or the owning allocator")
    for m in re.finditer(r"\bdelete(\s*\[\s*\])?\s+[A-Za-z_*(]", code):
        # `= delete;` for special members never matches (followed by `;`),
        # but guard against `operator delete` declarations anyway.
        prefix = code[max(0, m.start() - 16):m.start()]
        if re.search(r"=\s*$|operator\s*$", prefix):
            continue
        line = code.count("\n", 0, m.start()) + 1
        errors.append(f"{r}:{line}: [alloc] raw 'delete' outside "
                      "linalg/common — use owning containers")


def check_cout(path, code, errors):
    if not rel(path).startswith("src" + os.sep):
        return
    for m in re.finditer(r"\bstd::cout\b", code):
        line = code.count("\n", 0, m.start()) + 1
        errors.append(f"{rel(path)}:{line}: [telemetry] std::cout in src/ — "
                      "library code takes an ostream or reports telemetry")


def check_parallel_sync_comment(path, raw_text, code, errors):
    """R5: pool dispatches in src/ need a nearby `// sync:` comment."""
    r = rel(path)
    if not r.startswith("src" + os.sep):
        return
    if r.startswith(os.path.join("src", "common", "thread_pool")):
        return  # the implementation itself
    raw_lines = raw_text.splitlines()
    for m in re.finditer(r"(?:\.|->)\s*(parallel_for|run_tasks)\s*\(", code):
        line = code.count("\n", 0, m.start()) + 1
        window = raw_lines[max(0, line - 11):line]
        if not any(re.search(r"//.*\bsync:", w) for w in window):
            errors.append(
                f"{r}:{line}: [sync] {m.group(1)} dispatch without a "
                "'// sync:' comment in the preceding 10 lines naming the "
                "sharing discipline (disjoint writes / mutex / join order)")


SOCKET_SYSCALLS = (
    "socket", "connect", "accept", "bind", "listen", "recv", "recvmsg",
    "send", "sendmsg", "read", "write", "readv", "writev", "poll", "select",
    "close", "shutdown", "setsockopt", "getsockopt", "getsockname", "fcntl",
    "epoll_create1", "epoll_ctl", "epoll_wait",
)
BLOCKING_SYSCALLS = (
    "connect", "accept", "recv", "recvmsg", "send", "sendmsg", "read",
    "write", "readv", "writev", "poll", "select", "close", "epoll_wait",
)


def check_socket_syscalls(path, raw_text, code, errors):
    """R6: raw syscalls live in src/net/socket.* only, with EINTR stories."""
    r = rel(path)
    call = re.compile(
        r"(?<![\w)])::(" + "|".join(SOCKET_SYSCALLS) + r")\s*\(")
    if not r.startswith(os.path.join("src", "net", "socket")):
        for m in call.finditer(code):
            line = code.count("\n", 0, m.start()) + 1
            errors.append(
                f"{r}:{line}: [syscall] raw '::{m.group(1)}' outside "
                "src/net/socket.* — use the EINTR-safe wrappers in "
                "edgebol::net")
        return
    raw_lines = raw_text.splitlines()
    blocking = set(BLOCKING_SYSCALLS)
    for m in call.finditer(code):
        if m.group(1) not in blocking:
            continue
        line = code.count("\n", 0, m.start()) + 1
        window = raw_lines[max(0, line - 9):line + 8]
        if not any("EINTR" in w for w in window):
            errors.append(
                f"{r}:{line}: [syscall] blocking-capable '::{m.group(1)}' "
                "without an EINTR mention within 8 lines — state the "
                "interruption story (retry / descriptor released / not "
                "restartable)")


DECIDE_HOT_ALLOC = re.compile(
    r"\bnew\b|\bpush_back\s*\(|\bemplace_back\s*\(|\bresize\s*\(|"
    r"\breserve\s*\(|\bassign\s*\(|\bmake_shared\b|\bmake_unique\b|"
    r"\bstd::vector\s*<|\bstd::string\b|\bstd::function\b")


def check_decide_hot_alloc(path, raw_text, code, errors):
    """R7: no heap allocation inside `// hot: <name>` ... `// hot: end`.

    Regions are NAMED so each subsystem labels its own steady-state loop:
    `// hot: decide` for the per-cell decision path (safe set +
    acquisition), `// hot: dispatch` for the fleet engine's batched
    dispatch. Any name other than `end` opens a region.
    """
    r = rel(path)
    if not r.startswith("src" + os.sep):
        return
    # Markers live in comments, so find them on the RAW lines; allocation
    # tokens are matched on the STRIPPED lines so comments and strings
    # mentioning them don't trip the rule (same split as R5's sync check).
    raw_lines = raw_text.splitlines()
    code_lines = code.splitlines()
    open_line = None
    open_name = None
    for idx, rline in enumerate(raw_lines, start=1):
        m = re.search(r"//\s*hot:\s*(\w+)\b", rline)
        if m and m.group(1) != "end":
            if open_line is not None:
                errors.append(f"{r}:{idx}: [hot] nested '// hot: "
                              f"{m.group(1)}' (previous '{open_name}' "
                              f"opened at line {open_line})")
            open_line = idx
            open_name = m.group(1)
            continue
        if m:  # // hot: end
            if open_line is None:
                errors.append(f"{r}:{idx}: [hot] '// hot: end' without a "
                              "matching '// hot: <name>'")
            open_line = None
            open_name = None
            continue
        if open_line is None or idx - 1 >= len(code_lines):
            continue
        m = DECIDE_HOT_ALLOC.search(code_lines[idx - 1])
        if m:
            errors.append(
                f"{r}:{idx}: [hot] '{m.group(0).strip()}' inside a "
                f"'// hot: {open_name}' region — the steady-state loop "
                "must not allocate (hoist to setup or use fixed storage)")
    if open_line is not None:
        errors.append(f"{r}:{open_line}: [hot] '// hot: {open_name}' "
                      "without a closing '// hot: end'")


def check_headers_self_contained(errors):
    headers = sorted(
        list(iter_sources([os.path.join(REPO, "src")], exts=(".hpp",))) +
        list(iter_sources([os.path.join(REPO, "include")], exts=(".hpp",))))
    with tempfile.TemporaryDirectory() as tmp:
        tu = os.path.join(tmp, "self_contained.cpp")
        for h in headers:
            with open(tu, "w", encoding="utf-8") as f:
                f.write(f'#include "{h}"\n')
            proc = subprocess.run(
                [CXX, "-std=c++20", "-fsyntax-only",
                 "-I", os.path.join(REPO, "src"),
                 "-I", os.path.join(REPO, "include"), tu],
                capture_output=True, text=True)
            if proc.returncode != 0:
                first = proc.stderr.strip().splitlines()
                detail = first[0] if first else "compile failed"
                errors.append(f"{rel(h)}:1: [header] not self-contained: "
                              f"{detail}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="*",
                    help="dirs/files to lint (default: src bench tests "
                         "examples)")
    ap.add_argument("--skip-header-check", action="store_true",
                    help="skip the (slower) header self-containment compile")
    args = ap.parse_args()

    roots = [os.path.join(REPO, d) for d in CODE_DIRS]
    files = [p for p in (args.paths or []) if os.path.isfile(p)]
    if args.paths and not files:
        roots = [os.path.abspath(p) for p in args.paths]
    elif not args.paths:
        files = []

    errors = []
    sources = files if files else list(iter_sources(roots))
    for path in sources:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        code = strip_comments_and_strings(raw)
        check_rng(path, code, errors)
        check_new_delete(path, code, errors)
        check_cout(path, code, errors)
        check_parallel_sync_comment(path, raw, code, errors)
        check_socket_syscalls(path, raw, code, errors)
        check_decide_hot_alloc(path, raw, code, errors)

    if not args.skip_header_check and not files:
        check_headers_self_contained(errors)

    for e in errors:
        print(e)
    n = len(sources)
    if errors:
        print(f"invariant lint: {len(errors)} violation(s) in {n} files",
              file=sys.stderr)
        return 1
    print(f"invariant lint: clean ({n} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
