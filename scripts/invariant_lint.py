#!/usr/bin/env python3
"""Project-specific invariant lints the compiler cannot enforce.

Rules (see DESIGN.md "Concurrency invariants & analysis tooling"):

  R1 determinism   std::rand / std::random_device / srand are forbidden
                   everywhere except src/common/rng.* — all randomness must
                   flow through the seeded project RNG so runs replay
                   bit-identically.
  R2 allocation    raw `new` / `delete` are forbidden outside src/linalg and
                   src/common — everything else goes through containers or
                   the linalg/common owners (`= delete`d special members are
                   of course fine).
  R3 telemetry     std::cout is forbidden in src/ — library code reports via
                   telemetry / return values; stream output belongs to
                   bench/, examples/, tests/ and tools taking an ostream.
  R4 headers       every .hpp under src/ and include/ must be self-contained:
                   a TU consisting of just `#include "x.hpp"` compiles.
  R5 sync comment  every ThreadPool dispatch (`parallel_for` / `run_tasks`)
                   in src/ must carry a `// sync:` comment within the 10
                   lines above the call naming why the shared state it
                   touches is safe (disjoint writes, guarded by which mutex,
                   join-before-read, ...). Mutable state captured by
                   reference without a stated discipline is how silent races
                   land.
  R6 syscalls      ::-qualified socket/fd syscalls (::socket, ::connect,
                   ::read, ::readv, ::writev, ::poll, ::epoll_create1,
                   ::epoll_ctl, ::epoll_wait, ...) are forbidden outside
                   src/net/socket.* — everything rides the EINTR-safe
                   wrappers there (the epoll backend included: no other
                   file under src/net/ may touch the epoll fd directly).
                   Inside socket.*, every blocking-capable call site
                   (::epoll_wait and the batched ::readv/::writev
                   included) must mention EINTR within 8 lines either
                   way: a raw syscall without a stated interruption story
                   is a hang or a lost frame waiting for a signal to land.
  R7 hot regions   between a named `// hot: <name>` marker (decide,
                   dispatch, ...) and its closing
                   `// hot: end` in src/, heap-allocating constructs
                   (new, push_back, emplace_back, resize, reserve, assign,
                   make_shared, make_unique, std::vector<, std::string,
                   std::function) are forbidden: the sub-millisecond
                   decision loop (SafeSetTracker / FusedAcquisition sweeps)
                   must stay allocation-free past configure(). Unbalanced
                   markers are themselves violations.
  R8 raw sync      std::mutex / std::condition_variable / std::lock_guard /
                   std::unique_lock (and friends) are forbidden outside
                   src/common/sync.* — all locking rides the annotated
                   wrappers (common::Mutex / LockGuard / MutexLock /
                   CondVar) so lockdep and the clang thread-safety
                   attributes see every acquisition.
  R9 guarded       a member declared `EB_GUARDED_BY(mu)` may only be
                   touched in scopes that hold `mu`: under a LockGuard /
                   MutexLock on it, or inside a function definition whose
                   declaration carries `EB_REQUIRES(mu)`. The check is a
                   per-component (hpp + cpp sharing a path stem) scope
                   heuristic, not a points-to analysis; a deliberate
                   unguarded touch gets a `// unguarded-ok: <reason>`
                   escape on the line.

The lexer that feeds every rule is a comment/string-aware tokenizer: raw
strings, encoding prefixes, digit separators (1'000'000 is a number, not a
char literal), and escapes are lexed for real, so tokens inside literals
never fire a rule and code after a digit separator is still scanned.

Usage:
    scripts/invariant_lint.py [--skip-header-check] [paths...]

Exits 0 when clean; 1 with one `file:line: [rule] message` per violation.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CODE_DIRS = ["src", "bench", "tests", "examples", "tools"]
# The lint self-test corpus: .cc files with seeded violations, linted only
# by scripts/lint_selftest.py under virtual paths — never as repo sources.
CORPUS_DIR = os.path.join("tests", "lint_corpus")
CXX = os.environ.get("CXX", "g++")


# ---------------------------------------------------------------------------
# Lexer

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
# pp-number: a digit (optionally .-led) then any run of digits, identifier
# chars, dots, digit separators, or sign-bearing exponents. Matches
# 1'000'000, 0x1Fu, 0b1010'1010, 1.5e-3, 12.0_kb.
_PP_NUMBER = re.compile(r"\.?\d(?:'?[0-9A-Za-z_.]|[eEpP][+-])*")
_STRING_PREFIXES = {"u8", "u", "U", "L"}
_RAW_DELIM = re.compile(r'([^ ()\\\t\v\f\r\n]{0,16})\(')


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string literals (raw strings and encoding
    prefixes included), and char literals, preserving newlines so line
    numbers survive. Numbers are lexed as pp-numbers so C++14 digit
    separators don't open a phantom char literal."""
    out = []
    i, n = 0, len(text)

    def blank(segment):
        for ch in segment:
            out.append("\n" if ch == "\n" else " ")

    def skip_quoted(j, quote):
        """Consume a quoted literal body starting after the opening quote;
        returns the index just past the closing quote (or line/file end)."""
        while j < n:
            ch = text[j]
            if ch == "\\" and j + 1 < n:
                blank(text[j:j + 2])
                j += 2
                continue
            if ch == quote:
                out.append(" ")
                return j + 1
            if ch == "\n":  # unterminated literal: resync at the newline
                out.append("\n")
                return j + 1
            out.append(" ")
            j += 1
        return j

    def skip_raw_string(j):
        """`j` sits on the R of R"delim( — consume through )delim"."""
        m = _RAW_DELIM.match(text, j + 2)
        if not m:  # not actually a raw string; treat the R literally
            out.append(text[j])
            return j + 1
        close = ")" + m.group(1) + '"'
        end = text.find(close, m.end())
        end = n if end == -1 else end + len(close)
        blank(text[j:end])
        return end

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = i
            while j < n and text[j] != "\n":
                if text[j] == "\\" and j + 1 < n and text[j + 1] == "\n":
                    # Line continuation extends the comment.
                    out.append(" \n")
                    j += 2
                    continue
                out.append(" ")
                j += 1
            i = j
            continue
        if c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            blank(text[i:end])
            i = end
            continue
        if c.isalpha() or c == "_":
            m = _IDENT.match(text, i)
            word = m.group(0)
            after = text[m.end()] if m.end() < n else ""
            if after == '"' and word in _STRING_PREFIXES:
                blank(word + '"')
                i = skip_quoted(m.end() + 1, '"')
                continue
            if word == "R" and after == '"':
                i = skip_raw_string(i)
                continue
            if after == '"' and word.endswith("R") and \
                    word[:-1] in _STRING_PREFIXES:
                blank(word[:-1])
                i = skip_raw_string(i + len(word) - 1)
                continue
            out.append(word)
            i = m.end()
            continue
        if c.isdigit() or (c == "." and nxt.isdigit()):
            m = _PP_NUMBER.match(text, i)
            out.append(m.group(0))
            i = m.end()
            continue
        if c == '"':
            out.append(" ")
            i = skip_quoted(i + 1, '"')
            continue
        if c == "'":
            out.append(" ")
            i = skip_quoted(i + 1, "'")
            continue
        out.append(c)
        i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Per-file source model

class Source:
    """One file's raw text plus its comment/string-stripped twin."""

    def __init__(self, rel_path: str, raw: str):
        self.rel = rel_path
        self.raw = raw
        self.code = strip_comments_and_strings(raw)
        self.raw_lines = raw.splitlines()
        self.code_lines = self.code.splitlines()

    def line_of(self, offset: int) -> int:
        return self.code.count("\n", 0, offset) + 1


def rel(path: str) -> str:
    return os.path.relpath(path, REPO)


def iter_sources(paths, exts=(".cpp", ".hpp")):
    for root in paths:
        for dirpath, _dirs, files in os.walk(root):
            if os.path.relpath(dirpath, REPO).startswith(CORPUS_DIR):
                continue
            for f in sorted(files):
                if f.endswith(exts):
                    yield os.path.join(dirpath, f)


# ---------------------------------------------------------------------------
# R1 determinism

def check_rng(s: Source, errors):
    if s.rel.startswith(os.path.join("src", "common", "rng")):
        return
    for m in re.finditer(r"\bstd::rand\b|\brandom_device\b|\bsrand\s*\(",
                         s.code):
        errors.append(f"{s.rel}:{s.line_of(m.start())}: [rng] "
                      f"'{m.group(0)}' outside "
                      "src/common/rng.* — use edgebol::common::Rng")


# ---------------------------------------------------------------------------
# R2 allocation

def check_new_delete(s: Source, errors):
    r = s.rel
    if r.startswith(os.path.join("src", "linalg")) or \
       r.startswith(os.path.join("src", "common")):
        return
    # `new Type(...)` / `new Type[...]` — require an identifier after `new`
    # so `= delete`, placement-new-free code, and words like `renew` don't
    # trip it.
    for m in re.finditer(r"\bnew\s+[A-Za-z_:][\w:<>, ]*[\[(;{]?", s.code):
        errors.append(f"{r}:{s.line_of(m.start())}: [alloc] raw 'new' "
                      "outside linalg/common "
                      "— use containers or the owning allocator")
    for m in re.finditer(r"\bdelete(\s*\[\s*\])?\s+[A-Za-z_*(]", s.code):
        # `= delete;` for special members never matches (followed by `;`),
        # but guard against `operator delete` declarations anyway.
        prefix = s.code[max(0, m.start() - 16):m.start()]
        if re.search(r"=\s*$|operator\s*$", prefix):
            continue
        errors.append(f"{r}:{s.line_of(m.start())}: [alloc] raw 'delete' "
                      "outside linalg/common — use owning containers")


# ---------------------------------------------------------------------------
# R3 telemetry

def check_cout(s: Source, errors):
    if not s.rel.startswith("src" + os.sep):
        return
    for m in re.finditer(r"\bstd::cout\b", s.code):
        errors.append(f"{s.rel}:{s.line_of(m.start())}: [telemetry] "
                      "std::cout in src/ — "
                      "library code takes an ostream or reports telemetry")


# ---------------------------------------------------------------------------
# R5 sync comment

def check_parallel_sync_comment(s: Source, errors):
    """R5: pool dispatches in src/ need a nearby `// sync:` comment."""
    r = s.rel
    if not r.startswith("src" + os.sep):
        return
    if r.startswith(os.path.join("src", "common", "thread_pool")):
        return  # the implementation itself
    for m in re.finditer(r"(?:\.|->)\s*(parallel_for|run_tasks)\s*\(",
                         s.code):
        line = s.line_of(m.start())
        window = s.raw_lines[max(0, line - 11):line]
        if not any(re.search(r"//.*\bsync:", w) for w in window):
            errors.append(
                f"{r}:{line}: [sync] {m.group(1)} dispatch without a "
                "'// sync:' comment in the preceding 10 lines naming the "
                "sharing discipline (disjoint writes / mutex / join order)")


# ---------------------------------------------------------------------------
# R6 syscalls

SOCKET_SYSCALLS = (
    "socket", "connect", "accept", "bind", "listen", "recv", "recvmsg",
    "send", "sendmsg", "read", "write", "readv", "writev", "poll", "select",
    "close", "shutdown", "setsockopt", "getsockopt", "getsockname", "fcntl",
    "epoll_create1", "epoll_ctl", "epoll_wait",
)
BLOCKING_SYSCALLS = (
    "connect", "accept", "recv", "recvmsg", "send", "sendmsg", "read",
    "write", "readv", "writev", "poll", "select", "close", "epoll_wait",
)


def check_socket_syscalls(s: Source, errors):
    """R6: raw syscalls live in src/net/socket.* only, with EINTR stories."""
    r = s.rel
    call = re.compile(
        r"(?<![\w)])::(" + "|".join(SOCKET_SYSCALLS) + r")\s*\(")
    if not r.startswith(os.path.join("src", "net", "socket")):
        for m in call.finditer(s.code):
            errors.append(
                f"{r}:{s.line_of(m.start())}: [syscall] raw "
                f"'::{m.group(1)}' outside "
                "src/net/socket.* — use the EINTR-safe wrappers in "
                "edgebol::net")
        return
    blocking = set(BLOCKING_SYSCALLS)
    for m in call.finditer(s.code):
        if m.group(1) not in blocking:
            continue
        line = s.line_of(m.start())
        window = s.raw_lines[max(0, line - 9):line + 8]
        if not any("EINTR" in w for w in window):
            errors.append(
                f"{r}:{line}: [syscall] blocking-capable '::{m.group(1)}' "
                "without an EINTR mention within 8 lines — state the "
                "interruption story (retry / descriptor released / not "
                "restartable)")


# ---------------------------------------------------------------------------
# R7 hot regions

DECIDE_HOT_ALLOC = re.compile(
    r"\bnew\b|\bpush_back\s*\(|\bemplace_back\s*\(|\bresize\s*\(|"
    r"\breserve\s*\(|\bassign\s*\(|\bmake_shared\b|\bmake_unique\b|"
    r"\bstd::vector\s*<|\bstd::string\b|\bstd::function\b")


def check_decide_hot_alloc(s: Source, errors):
    """R7: no heap allocation inside `// hot: <name>` ... `// hot: end`.

    Regions are NAMED so each subsystem labels its own steady-state loop:
    `// hot: decide` for the per-cell decision path (safe set +
    acquisition), `// hot: dispatch` for the fleet engine's batched
    dispatch. Any name other than `end` opens a region.
    """
    r = s.rel
    if not r.startswith("src" + os.sep):
        return
    # Markers live in comments, so find them on the RAW lines; allocation
    # tokens are matched on the STRIPPED lines so comments and strings
    # mentioning them don't trip the rule (same split as R5's sync check).
    open_line = None
    open_name = None
    for idx, rline in enumerate(s.raw_lines, start=1):
        m = re.search(r"//\s*hot:\s*(\w+)\b", rline)
        if m and m.group(1) != "end":
            if open_line is not None:
                errors.append(f"{r}:{idx}: [hot] nested '// hot: "
                              f"{m.group(1)}' (previous '{open_name}' "
                              f"opened at line {open_line})")
            open_line = idx
            open_name = m.group(1)
            continue
        if m:  # // hot: end
            if open_line is None:
                errors.append(f"{r}:{idx}: [hot] '// hot: end' without a "
                              "matching '// hot: <name>'")
            open_line = None
            open_name = None
            continue
        if open_line is None or idx - 1 >= len(s.code_lines):
            continue
        m = DECIDE_HOT_ALLOC.search(s.code_lines[idx - 1])
        if m:
            errors.append(
                f"{r}:{idx}: [hot] '{m.group(0).strip()}' inside a "
                f"'// hot: {open_name}' region — the steady-state loop "
                "must not allocate (hoist to setup or use fixed storage)")
    if open_line is not None:
        errors.append(f"{r}:{open_line}: [hot] '// hot: {open_name}' "
                      "without a closing '// hot: end'")


# ---------------------------------------------------------------------------
# R8 raw sync primitives

RAW_SYNC = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable|"
    r"condition_variable_any|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")


def check_raw_sync(s: Source, errors):
    """R8: locking goes through the annotated wrappers in common/sync.hpp.

    src/common/sync.* is the one exemption — it owns the raw primitives
    (and the lockdep registry's own mutex, which must sit below every
    wrapped lock)."""
    if s.rel.startswith(os.path.join("src", "common", "sync.")):
        return
    for m in RAW_SYNC.finditer(s.code):
        errors.append(
            f"{s.rel}:{s.line_of(m.start())}: [rawsync] 'std::{m.group(1)}' "
            "outside src/common/sync.* — use common::Mutex / LockGuard / "
            "MutexLock / CondVar so lockdep and the clang thread-safety "
            "annotations see the acquisition")


# ---------------------------------------------------------------------------
# R9 guarded members

def _guard_base(expr: str) -> str:
    """`ep_->mu_` and `other.mu_` guard the same class of scopes as a plain
    `mu_`: the heuristic keys on the trailing identifier."""
    idents = re.findall(r"[A-Za-z_]\w*", expr)
    return idents[-1] if idents else ""


def component_of(rel_path: str) -> str:
    """hpp/cpp pairs sharing a path stem form one analysis component."""
    stem, _ext = os.path.splitext(rel_path)
    return stem


_GUARDED_DECL = re.compile(r"\b([A-Za-z_]\w*)\s+EB_GUARDED_BY\s*\(([^)]*)\)")


def _on_pp_directive(code: str, pos: int) -> bool:
    """True when `pos` sits on a preprocessor line (the macro definitions
    of EB_GUARDED_BY itself must not register as member declarations)."""
    start = code.rfind("\n", 0, pos) + 1
    return code[start:pos + 1].lstrip().startswith("#")
_REQUIRES = re.compile(r"EB_REQUIRES\s*\(([^)]*)\)")
_LOCK_ACQ = re.compile(
    r"\b(?:common::)?(?:LockGuard|MutexLock)\s+\w+\s*[({]([^)}]*)[)}]")


def collect_guard_maps(sources):
    """Scan every file for EB_GUARDED_BY member declarations and
    EB_REQUIRES function declarations, grouped by component."""
    guards = {}    # component -> {member: set(guard bases)}
    requires = {}  # component -> {function: set(guard bases)}
    for s in sources:
        comp = component_of(s.rel)
        for m in _GUARDED_DECL.finditer(s.code):
            if _on_pp_directive(s.code, m.start()):
                continue
            member, expr = m.group(1), m.group(2)
            guards.setdefault(comp, {}).setdefault(
                member, set()).add(_guard_base(expr))
        for m in _REQUIRES.finditer(s.code):
            if _on_pp_directive(s.code, m.start()):
                continue
            bases = {_guard_base(g) for g in m.group(1).split(",") if
                     _guard_base(g)}
            # The function name owns the parameter list immediately before
            # the macro: walk back over one balanced (...) group.
            head = s.code[:m.start()]
            j = head.rfind(")")
            if j < 0:
                continue
            depth, k = 1, j - 1
            while k >= 0 and depth:
                if head[k] == ")":
                    depth += 1
                elif head[k] == "(":
                    depth -= 1
                k -= 1
            name_m = re.search(r"([A-Za-z_]\w*)\s*$", head[:k + 1])
            if name_m:
                requires.setdefault(comp, {}).setdefault(
                    name_m.group(1), set()).update(bases)
    return guards, requires


def check_guarded_access(s: Source, guards, requires, errors):
    """R9: every touch of an EB_GUARDED_BY member must sit in a scope that
    holds the guard.

    Scope heuristic, per line, tracking brace depth:
      * a LockGuard/MutexLock declaration holds its guard until the
        enclosing block closes (manual MutexLock::unlock() is invisible —
        the escape comment covers the rare early-release read);
      * a function definition whose name carries EB_REQUIRES(mu) in this
        component's declarations holds mu for its whole body (definitions
        are recognized at namespace level only, so call sites of the same
        name inside other bodies don't inherit the guard);
      * `// unguarded-ok: <reason>` on the line waives the rule (intended
        for pre-publication writes in constructors and teardown paths that
        are single-threaded by contract).
    """
    comp = component_of(s.rel)
    comp_guards = guards.get(comp, {})
    if not comp_guards:
        return
    comp_requires = requires.get(comp, {})
    member_pat = re.compile(
        r"\b(" + "|".join(re.escape(m) for m in sorted(comp_guards)) +
        r")\b")
    defn_pat = None
    if comp_requires:
        defn_pat = re.compile(
            r"(?:^|[\s:*&])(" +
            "|".join(re.escape(f) for f in sorted(comp_requires)) +
            r")\s*\(")

    # Declaration sites span lines (`std::vector<T> streams_\n
    # EB_GUARDED_BY(mu_);`): the member name on the first line is a
    # declaration, not an access.
    decl_lines = set()
    for m in _GUARDED_DECL.finditer(s.code):
        for ln in range(s.line_of(m.start()), s.line_of(m.end() - 1) + 1):
            decl_lines.add(ln)

    depth = 0
    held = []  # (alive_while_depth_at_least, guard base)

    def held_bases():
        return {b for _d, b in held}

    for idx, line in enumerate(s.code_lines, start=1):
        raw_line = s.raw_lines[idx - 1] if idx - 1 < len(s.raw_lines) else ""
        decl_line = idx in decl_lines or "EB_GUARDED_BY" in line
        waived = "unguarded-ok:" in raw_line

        for m in _LOCK_ACQ.finditer(line):
            base = _guard_base(m.group(1))
            if base:
                # Alive for the rest of the enclosing block (which is the
                # depth in force at the declaration).
                held.append((depth if depth else 1, base))
        if defn_pat and depth <= 1:
            m = defn_pat.search(line)
            if m and not line.rstrip().endswith(";"):
                for b in comp_requires.get(m.group(1), ()):
                    held.append((depth + 1, b))
        # EB_REQUIRES spelled directly on an inline definition in a header.
        if "EB_REQUIRES" in line and not line.rstrip().endswith(";"):
            for rm in _REQUIRES.finditer(line):
                for g in rm.group(1).split(","):
                    b = _guard_base(g)
                    if b:
                        held.append((depth + 1, b))

        if not decl_line and not waived:
            have = held_bases()
            for m in member_pat.finditer(line):
                member = m.group(1)
                want = comp_guards[member]
                if want & have:
                    continue
                guard_txt = " / ".join(sorted(want))
                errors.append(
                    f"{s.rel}:{idx}: [guarded] '{member}' "
                    f"(EB_GUARDED_BY({guard_txt})) accessed without "
                    f"holding '{guard_txt}' — take a common::LockGuard/"
                    "MutexLock, annotate the function EB_REQUIRES, or "
                    "append '// unguarded-ok: <reason>'")
                break  # one report per line keeps the output readable

        for ch in line:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth = max(0, depth - 1)
                held = [(d, b) for d, b in held if d <= depth]


# ---------------------------------------------------------------------------
# R4 headers (filesystem-backed; not part of analyze_sources)

def check_headers_self_contained(errors):
    headers = sorted(
        list(iter_sources([os.path.join(REPO, "src")], exts=(".hpp",))) +
        list(iter_sources([os.path.join(REPO, "include")], exts=(".hpp",))))
    with tempfile.TemporaryDirectory() as tmp:
        tu = os.path.join(tmp, "self_contained.cpp")
        for h in headers:
            with open(tu, "w", encoding="utf-8") as f:
                f.write(f'#include "{h}"\n')
            proc = subprocess.run(
                [CXX, "-std=c++20", "-fsyntax-only",
                 "-I", os.path.join(REPO, "src"),
                 "-I", os.path.join(REPO, "include"), tu],
                capture_output=True, text=True)
            if proc.returncode != 0:
                first = proc.stderr.strip().splitlines()
                detail = first[0] if first else "compile failed"
                errors.append(f"{rel(h)}:1: [header] not self-contained: "
                              f"{detail}")


# ---------------------------------------------------------------------------
# Driver

def analyze_sources(sources):
    """All text rules over a list of Source objects. Takes pre-built
    Sources (not paths) so the self-test can feed virtual files."""
    guards, requires = collect_guard_maps(sources)
    errors = []
    for s in sources:
        check_rng(s, errors)
        check_new_delete(s, errors)
        check_cout(s, errors)
        check_parallel_sync_comment(s, errors)
        check_socket_syscalls(s, errors)
        check_decide_hot_alloc(s, errors)
        check_raw_sync(s, errors)
        check_guarded_access(s, guards, requires, errors)
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="*",
                    help="dirs/files to lint (default: src bench tests "
                         "examples)")
    ap.add_argument("--skip-header-check", action="store_true",
                    help="skip the (slower) header self-containment compile")
    args = ap.parse_args()

    roots = [os.path.join(REPO, d) for d in CODE_DIRS]
    files = [p for p in (args.paths or []) if os.path.isfile(p)]
    if args.paths and not files:
        roots = [os.path.abspath(p) for p in args.paths]
    elif not args.paths:
        files = []

    paths = files if files else list(iter_sources(roots))
    sources = []
    for path in paths:
        with open(path, encoding="utf-8") as f:
            sources.append(Source(rel(path), f.read()))
    errors = analyze_sources(sources)

    if not args.skip_header_check and not files:
        check_headers_self_contained(errors)

    for e in errors:
        print(e)
    n = len(sources)
    if errors:
        print(f"invariant lint: {len(errors)} violation(s) in {n} files",
              file=sys.stderr)
        return 1
    print(f"invariant lint: clean ({n} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
