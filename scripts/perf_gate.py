#!/usr/bin/env python3
"""Perf gate over a bench JSON report (BENCH_gp.json, BENCH_transport.json).

Parses the report as real JSON (replacing the old awk field scrape, which
silently matched nothing when the emitter's spacing changed) and gates in one
of two modes:

speedup mode (default, BENCH_gp.json):
    fails if any phase's engine-vs-reference speedup is below the threshold,
    naming the offending phase(s).

metrics mode (--ceiling / --metric-floor, BENCH_transport.json,
BENCH_ingest.json):
    reads the report's top-level "metrics" object and fails if any named
    metric exceeds its ceiling (lower is better: latencies, recovery times)
    or falls below its floor (higher is better: throughput). The two flags
    compose in one invocation since both gate the same "metrics" object.

Usage:
    scripts/perf_gate.py build-release/BENCH_gp.json [--min-speedup 0.95] \
        [--floor track=0.85 ...]
    scripts/perf_gate.py build-release/BENCH_transport.json \
        --ceiling p99_loaded_ms=500 [--ceiling recovery_ms=15000 ...]
    scripts/perf_gate.py build-release/BENCH_ingest.json \
        --metric-floor frames_per_sec=1000000

--floor overrides the threshold for a single named phase. Use it for phases
whose true engine/reference ratio sits at parity, where the global floor
would flake on timing noise rather than catch regressions; the override
should still be tight enough that a real slowdown trips it.

Exit codes: 0 = pass, 1 = at least one phase/metric out of bounds,
2 = report missing/truncated/malformed (treated as a hard failure by
check.sh — a bench that failed to produce a report must never pass the
gate by accident).
"""

import argparse
import json
import sys


def parse_named_float(flag: str):
    def parse(spec: str):
        name, sep, value = spec.partition("=")
        if not sep or not name:
            raise argparse.ArgumentTypeError(
                f"{flag} expects NAME=VALUE, got {spec!r}")
        try:
            return name, float(value)
        except ValueError as e:
            raise argparse.ArgumentTypeError(f"{flag} {spec!r}: {e}") from e
    return parse


def load_report(path: str):
    """Returns the parsed top-level dict, or None after printing why not.

    Every failure path here prints one actionable line instead of letting a
    traceback escape: a missing, truncated, binary-garbage, or
    wrong-shaped report is a gate failure, not a crash.
    """
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except OSError as e:
        print(f"perf gate: cannot read {path}: {e}", file=sys.stderr)
        return None
    except json.JSONDecodeError as e:
        print(f"perf gate: {path} is not valid JSON (truncated bench run?): "
              f"{e}", file=sys.stderr)
        return None
    except (UnicodeDecodeError, ValueError) as e:
        print(f"perf gate: {path} is not UTF-8 JSON: {e}", file=sys.stderr)
        return None
    if not isinstance(data, dict):
        print(f"perf gate: {path} top level is {type(data).__name__}, "
              f"expected an object", file=sys.stderr)
        return None
    return data


def gate_speedups(data, report, min_speedup, floors) -> int:
    phases = data.get("phases")
    if not isinstance(phases, list) or not phases:
        print(f"perf gate: {report} has no 'phases' array", file=sys.stderr)
        return 2

    failures = []
    names = set()
    for phase in phases:
        if not isinstance(phase, dict):
            print(f"perf gate: {report} phase entry is not an object",
                  file=sys.stderr)
            return 2
        name = phase.get("name", "<unnamed>")
        names.add(name)
        speedup = phase.get("speedup")
        if not isinstance(speedup, (int, float)):
            print(f"perf gate: phase '{name}' has no numeric 'speedup'",
                  file=sys.stderr)
            return 2
        threshold = floors.get(name, min_speedup)
        marker = "ok" if speedup >= threshold else "FAIL"
        print(f"perf gate: {name:<12} speedup {speedup:7.3f}  "
              f"(floor {threshold:.2f})  [{marker}]")
        if speedup < threshold:
            failures.append((name, speedup, threshold))

    unknown = sorted(set(floors) - names)
    if unknown:
        print(f"perf gate: --floor names not in report: {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    if failures:
        worst = min(failures, key=lambda f: f[1] / f[2])
        print(f"perf gate: FAILED — {len(failures)} phase(s) below their "
              f"floor, worst: '{worst[0]}' at {worst[1]:.3f}x "
              f"(floor {worst[2]:.2f}x)", file=sys.stderr)
        return 1
    print(f"perf gate: all {len(phases)} phases at or above their floors "
          f"(default {min_speedup:.2f}x)")
    return 0


def gate_metrics(data, report, ceilings, floors) -> int:
    metrics = data.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        print(f"perf gate: {report} has no 'metrics' object",
              file=sys.stderr)
        return 2

    bounds = [(name, value, "ceiling") for name, value in ceilings.items()]
    bounds += [(name, value, "floor") for name, value in floors.items()]
    failures = []
    for name, bound, kind in sorted(bounds):
        value = metrics.get(name)
        if not isinstance(value, (int, float)):
            print(f"perf gate: metric '{name}' missing or non-numeric in "
                  f"{report} (have: {', '.join(sorted(metrics))})",
                  file=sys.stderr)
            return 2
        ok = value <= bound if kind == "ceiling" else value >= bound
        marker = "ok" if ok else "FAIL"
        print(f"perf gate: {name:<18} {value:14.3f}  "
              f"({kind} {bound:.3f})  [{marker}]")
        if not ok:
            failures.append((name, value, bound, kind))

    if failures:
        print(f"perf gate: FAILED — {len(failures)} metric(s) out of "
              "bounds: " + ", ".join(
                  f"'{name}' at {value:.3f} ({kind} {bound:.3f})"
                  for name, value, bound, kind in failures),
              file=sys.stderr)
        return 1
    print(f"perf gate: all {len(bounds)} metrics within bounds")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", help="path to a BENCH_*.json report")
    ap.add_argument("--min-speedup", type=float, default=0.95,
                    help="minimum engine/reference speedup per phase")
    ap.add_argument("--floor", type=parse_named_float("--floor"),
                    action="append", default=[], metavar="NAME=VALUE",
                    help="per-phase speedup threshold override (repeatable)")
    ap.add_argument("--ceiling", type=parse_named_float("--ceiling"),
                    action="append", default=[], metavar="NAME=VALUE",
                    help="gate a 'metrics' entry at <= VALUE instead of "
                         "gating phase speedups (repeatable)")
    ap.add_argument("--metric-floor",
                    type=parse_named_float("--metric-floor"),
                    action="append", default=[], metavar="NAME=VALUE",
                    help="gate a 'metrics' entry at >= VALUE (higher is "
                         "better: throughput); composes with --ceiling "
                         "(repeatable)")
    args = ap.parse_args()

    data = load_report(args.report)
    if data is None:
        return 2
    if args.ceiling or args.metric_floor:
        if args.floor:
            print("perf gate: --ceiling/--metric-floor and --floor are "
                  "separate modes; pass one or the other", file=sys.stderr)
            return 2
        return gate_metrics(data, args.report, dict(args.ceiling),
                            dict(args.metric_floor))
    return gate_speedups(data, args.report, args.min_speedup,
                         dict(args.floor))


if __name__ == "__main__":
    sys.exit(main())
