#!/usr/bin/env python3
"""Perf gate over a bench JSON report (BENCH_gp.json).

Parses the report as real JSON (replacing the old awk field scrape, which
silently matched nothing when the emitter's spacing changed) and fails if any
phase's engine-vs-reference speedup is below the threshold, naming the
offending phase(s).

Usage:
    scripts/perf_gate.py build-release/BENCH_gp.json [--min-speedup 0.95] \
        [--floor track=0.85 ...]

--floor overrides the threshold for a single named phase. Use it for phases
whose true engine/reference ratio sits at parity, where the global floor
would flake on timing noise rather than catch regressions; the override
should still be tight enough that a real slowdown trips it.

Exit codes: 0 = all phases pass, 1 = at least one phase below threshold,
2 = report missing/malformed (treated as a hard failure by check.sh).
"""

import argparse
import json
import sys


def parse_floor(spec: str):
    name, sep, value = spec.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"--floor expects NAME=VALUE, got {spec!r}")
    try:
        return name, float(value)
    except ValueError as e:
        raise argparse.ArgumentTypeError(
            f"--floor {spec!r}: {e}") from e


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", help="path to BENCH_gp.json")
    ap.add_argument("--min-speedup", type=float, default=0.95,
                    help="minimum engine/reference speedup per phase")
    ap.add_argument("--floor", type=parse_floor, action="append", default=[],
                    metavar="NAME=VALUE",
                    help="per-phase threshold override (repeatable)")
    args = ap.parse_args()
    floors = dict(args.floor)

    try:
        with open(args.report, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf gate: cannot read {args.report}: {e}", file=sys.stderr)
        return 2

    phases = data.get("phases")
    if not isinstance(phases, list) or not phases:
        print(f"perf gate: {args.report} has no 'phases' array", file=sys.stderr)
        return 2

    failures = []
    for phase in phases:
        name = phase.get("name", "<unnamed>")
        speedup = phase.get("speedup")
        if not isinstance(speedup, (int, float)):
            print(f"perf gate: phase '{name}' has no numeric 'speedup'",
                  file=sys.stderr)
            return 2
        threshold = floors.get(name, args.min_speedup)
        marker = "ok" if speedup >= threshold else "FAIL"
        print(f"perf gate: {name:<12} speedup {speedup:7.3f}  "
              f"(floor {threshold:.2f})  [{marker}]")
        if speedup < threshold:
            failures.append((name, speedup, threshold))

    unknown = sorted(set(floors) - {p.get("name") for p in phases})
    if unknown:
        print(f"perf gate: --floor names not in report: {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    if failures:
        worst = min(failures, key=lambda f: f[1] / f[2])
        print(f"perf gate: FAILED — {len(failures)} phase(s) below their "
              f"floor, worst: '{worst[0]}' at {worst[1]:.3f}x "
              f"(floor {worst[2]:.2f}x)", file=sys.stderr)
        return 1
    print(f"perf gate: all {len(phases)} phases at or above their floors "
          f"(default {args.min_speedup:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
