#!/usr/bin/env bash
# Canonical three-process O-RAN demo: env (O-eNB/vBS + testbed), nearrt
# (xApps), and nonrt (learner) as separate OS processes talking over the
# TCP message plane, with file-based port rendezvous.
#
#   scripts/run_three_process_demo.sh [BUILD_DIR] [PERIODS]
#
# BUILD_DIR defaults to build/ (must contain tools/ric_node); PERIODS to 60.
# The learner's per-period trajectory lands in DIR/trajectory.json and per-
# process transport stats print on each process's stderr. Launch order does
# not matter — servers publish "<port>\n" to DIR/<link>.port atomically and
# clients poll for the files.
#
# To watch the plane degrade and recover, hand the near-RT RIC chaos flags,
# e.g. a 5-second E2 partition one second after establishment:
#   NEARRT_FLAGS="--e2-partition 1000:5000" scripts/run_three_process_demo.sh

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
PERIODS="${2:-60}"
RIC_NODE="$BUILD_DIR/tools/ric_node"
[[ -x "$RIC_NODE" ]] || {
  echo "error: $RIC_NODE not built (cmake --build $BUILD_DIR)" >&2
  exit 1
}

DIR="$(mktemp -d "${TMPDIR:-/tmp}/edgebol-demo.XXXXXX")"
cleanup() {
  # The done file stops the servers; the kill is a backstop for crashes.
  touch "$DIR/done" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

echo "== three-process O-RAN plane: dir=$DIR periods=$PERIODS =="
# shellcheck disable=SC2086  # NEARRT_FLAGS is intentionally word-split
"$RIC_NODE" --role env --dir "$DIR" &
"$RIC_NODE" --role nearrt --dir "$DIR" ${NEARRT_FLAGS:-} &
"$RIC_NODE" --role nonrt --dir "$DIR" --periods "$PERIODS" \
  --out "$DIR/trajectory.json"

wait
echo
echo "== trajectory (last 3 periods) =="
python3 - "$DIR/trajectory.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
traj = data["trajectory"]
print(f"{len(traj)} periods, mean cost {data['mean_cost']:.4f}, "
      f"violation rate {data['violation_rate']:.4f}")
for i, p in enumerate(traj[-3:], len(traj) - 3):
    print(f"  period {i:3d}: cost {p['cost']:.4f} "
          f"airtime {p['airtime']:.3f} gpu {p['gpu_speed']:.3f}")
EOF
