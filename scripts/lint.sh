#!/usr/bin/env bash
# Static analysis entry point: clang-tidy (curated set in .clang-tidy),
# project invariant lints (scripts/invariant_lint.py), and — with --check —
# clang-format verification.
#
#   scripts/lint.sh            # clang-tidy + invariant lints
#   scripts/lint.sh --check    # ... plus clang-format --dry-run (no rewrite)
#   scripts/lint.sh --fix      # ... instead reformat files in place
#
# clang-tidy and clang-format are optional toolchain components: when absent
# those tiers report SKIP and the script still exits by the remaining tiers'
# verdict (the invariant lints always run). clang-tidy consumes
# compile_commands.json from build/ (configured on demand).

set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-}"
fail=0

# Lintable translation units: our own .cpp files, no generated code.
mapfile -t tus < <(find src bench tests examples -name '*.cpp' | sort)

echo "== lint: clang-tidy (${#tus[@]} TUs) =="
if command -v clang-tidy >/dev/null 2>&1; then
  [[ -f build/compile_commands.json ]] || cmake -B build -S . >/dev/null
  if ! clang-tidy -p build --quiet "${tus[@]}"; then
    echo "lint: clang-tidy FAILED"
    fail=1
  else
    echo "lint: clang-tidy clean"
  fi
else
  echo "lint: SKIP clang-tidy (not installed; config in .clang-tidy)"
  echo "      install it to run this tier: apt-get install clang-tidy" \
       "(Debian/Ubuntu) or dnf install clang-tools-extra (Fedora)"
fi

echo "== lint: project invariants =="
if ! python3 scripts/invariant_lint.py; then
  fail=1
fi

if [[ "$mode" == "--check" || "$mode" == "--fix" ]]; then
  echo "== lint: clang-format =="
  if command -v clang-format >/dev/null 2>&1; then
    mapfile -t fmt_files < <(find src bench tests examples include \
      \( -name '*.cpp' -o -name '*.hpp' \) | sort)
    if [[ "$mode" == "--fix" ]]; then
      clang-format -i "${fmt_files[@]}"
      echo "lint: clang-format applied to ${#fmt_files[@]} files"
    elif ! clang-format --dry-run --Werror "${fmt_files[@]}"; then
      echo "lint: clang-format check FAILED (run scripts/lint.sh --fix)"
      fail=1
    else
      echo "lint: clang-format clean"
    fi
  else
    echo "lint: SKIP clang-format (not installed; config in .clang-format)"
  fi
fi

if [[ "$fail" -ne 0 ]]; then
  echo "== lint failed =="
  exit 1
fi
echo "== lint passed =="
