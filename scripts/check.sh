#!/usr/bin/env bash
# Tier-1 verification plus an ASan+UBSan pass over the test suite.
#
#   scripts/check.sh            # tier-1 + sanitizers
#   scripts/check.sh --fast     # tier-1 only
#
# Both builds live under build/ and build-asan/ so repeat runs are
# incremental.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipped sanitizer pass (--fast) =="
  exit 0
fi

echo "== sanitizers: ASan + UBSan test pass =="
cmake -B build-asan -S . -DEDGEBOL_SANITIZE=ON >/dev/null
cmake --build build-asan -j >/dev/null
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=0 \
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo "== all checks passed =="
