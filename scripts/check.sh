#!/usr/bin/env bash
# Full verification ladder: lint, tier-1 tests, optimized perf gate (GP
# engine speedups + transport latency/recovery ceilings), the sanitizer
# tiers (ASan+UBSan+LSan, TSan at thread counts 2 and 8, then standalone
# UBSan with every finding fatal), the lockdep tier (whole suite plus the
# transport smoke with runtime lock-order checking fatal), and the
# multi-process transport smoke under both sanitizers.
#
#   scripts/check.sh            # every tier
#   scripts/check.sh --fast     # lint + tier-1 + release smoke only
#
# Builds live under build/, build-release/, build-asan/, build-tsan/,
# build-ubsan/, and build-lockdep/ (Debug: the affinity asserts and the
# EXPECT_DEATH coverage only exist without NDEBUG) so
# repeat runs are incremental. All builds carry EDGEBOL_WERROR=ON: a warning
# anywhere is a failure here even though plain developer builds stay lenient.
# A summary table of tier outcomes prints on exit, success or failure.

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

declare -a TIER_NAMES=() TIER_STATUS=()
CURRENT_TIER=""

summary() {
  echo
  echo "== tier summary =="
  printf '%-28s %s\n' "tier" "status"
  printf '%-28s %s\n' "----" "------"
  for i in "${!TIER_NAMES[@]}"; do
    printf '%-28s %s\n' "${TIER_NAMES[$i]}" "${TIER_STATUS[$i]}"
  done
  if [[ -n "$CURRENT_TIER" ]]; then
    printf '%-28s %s\n' "$CURRENT_TIER" "FAIL"
  fi
}
trap summary EXIT

begin_tier() {
  CURRENT_TIER="$1"
  echo
  echo "== $1 =="
}

end_tier() {  # $1 = status (pass/skip note)
  TIER_NAMES+=("$CURRENT_TIER")
  TIER_STATUS+=("${1:-pass}")
  CURRENT_TIER=""
}

begin_tier "lint"
# clang-format verification rides along via --check (skips when the tool is
# absent); clang-tidy + invariant lints are the hard gate.
scripts/lint.sh --check
end_tier pass

begin_tier "tier-1 (debug ctest)"
cmake -B build -S . -DEDGEBOL_WERROR=ON >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j "$(nproc)"
end_tier pass

begin_tier "release smoke + perf gate"
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release -DEDGEBOL_WERROR=ON \
  -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG" >/dev/null
cmake --build build-release -j >/dev/null
ctest --test-dir build-release --output-on-failure -j "$(nproc)"
# Engine-vs-reference correctness gate (1e-9) + per-phase timings; exits
# non-zero on mismatch (this includes the decide phase's engine-vs-legacy
# decision identity check). BENCH_gp.json lands in build-release/.
# Perf gates, two invocations over the same JSON (speedup mode and --ceiling
# mode are mutually exclusive in perf_gate.py):
#  1. Speedups: every phase must keep the engine at >= 0.95x of the
#     reference, except `track`, floored at 0.90: at smoke sizes the
#     engine's track used to sit at parity (0.91-1.04 across runs); the
#     fused cross-kernel rebuild now puts it above 1.0, but a 0.95 floor
#     would still gate on scheduler noise — 0.90 trips on real slowdowns.
#  2. Decision-path ceiling: one full decision (bound maintenance + safe
#     set + acquisition) at the full 11^4 grid with the budget at 200 must
#     stay under 1 ms at p99, serial and with an 8-thread pool (measured
#     p50 ~0.35 ms, p99 ~0.45 ms; see DESIGN.md "Performance model").
# Timings interleave the two sides rep-by-rep (best-of-9 each), but a
# CPU-steal burst on a shared box can still sink one side's ratio or land
# in a p99 sample; re-measuring up to 3 times separates that (passes
# eventually) from a real regression (fails all attempts). Correctness runs
# every attempt.
gate_ok=0
for attempt in 1 2 3; do
  (cd build-release && ./bench/bench_micro_gp --smoke)
  if python3 scripts/perf_gate.py build-release/BENCH_gp.json \
      --min-speedup 0.95 --floor track=0.90 \
    && python3 scripts/perf_gate.py build-release/BENCH_gp.json \
      --ceiling decide_p99_ms_t1=1.0 --ceiling decide_p99_ms_t8=1.0; then
    gate_ok=1
    break
  fi
  echo "perf gate: attempt $attempt/3 below threshold; re-measuring"
done
[[ "$gate_ok" == 1 ]]
# Transport bench: p99 indication-to-policy latency under an o1 flood plus
# recovery time after a seeded 4s E2 partition, then the multiplexed fleet
# phase (1000 cells over 8 TCP connections through MuxEndpoint). Smoke p99
# measures 30-45ms on an idle box; the 500ms ceiling is generous headroom
# for shared-CPU noise while still catching a real event-loop or
# backpressure regression (a blocking send on the hot path lands in the
# seconds). Recovery after the window is ~1s; 15s means reconnect/backoff
# supervision broke. Fleet ceilings:
#   p99_mux_ms=500          -> per-indication decision latency across 1000
#                              cells (measured p99 ~45-50ms; dominated by
#                              the engine's batched decide, not the wire);
#   mux_cells_shortfall=0   -> every cell completed every period;
#   mux_connections=8       -> the fleet really rode <= 8 connections.
# Timing metrics share the 3-attempt re-measure discipline; the
# deterministic ones must pass every attempt.
transport_ok=0
for attempt in 1 2 3; do
  (cd build-release && ./tools/bench_transport --smoke)
  if python3 scripts/perf_gate.py build-release/BENCH_transport.json \
      --ceiling p99_loaded_ms=500 --ceiling recovery_ms=15000 \
      --ceiling p99_mux_ms=500 --ceiling mux_cells_shortfall=0 \
      --ceiling mux_connections=8; then
    transport_ok=1
    break
  fi
  echo "transport gate: attempt $attempt/3 out of bounds; re-measuring"
done
[[ "$transport_ok" == 1 ]]
# Mux ingest bench: one MuxEndpoint pair flooded over loopback (wire phase),
# then the decoder replayed standalone (decode phase). The gated floor is
# the BARE decode rate — >= 1M frames/s is the budget that keeps framing
# off the fleet's critical path (measured ~40M debug, ~80M release; the
# wire rate, ~1.7M frames/s, also lands above the floor but syscall cost
# makes it the noisier number, reported as wire_frames_per_sec).
ingest_ok=0
for attempt in 1 2 3; do
  (cd build-release && ./tools/load_ric --ingest --out BENCH_ingest.json)
  if python3 scripts/perf_gate.py build-release/BENCH_ingest.json \
      --metric-floor frames_per_sec=1000000; then
    ingest_ok=1
    break
  fi
  echo "ingest gate: attempt $attempt/3 below floor; re-measuring"
done
[[ "$ingest_ok" == 1 ]]
# Fleet bench: 1000 heterogeneous cells through the batched engine at 8
# threads. Ceilings encode the fleet acceptance floor (all lower-is-better):
#   cells_shortfall=0          -> the run really drove >= 1000 cells;
#   us_per_decision_agg=200    -> >= 5000 decisions/sec aggregate
#                                 (measured ~40-50k on an idle 8-core box);
#   decide_p99_ms=1.0          -> per-cell select() p99 under 1 ms;
#   identity_mismatches=0      -> batched dispatch bit-identical to the
#                                 serial per-cell loop;
#   warm_cold_ratio=0.5        -> a warm-started joiner converges in at
#                                 most half the cold joiner's periods
#                                 (measured ~0.1; deterministic, so any
#                                 flake here is a real regression).
# Timing metrics share the 3-attempt re-measure discipline of the GP gate;
# the deterministic metrics must pass on every attempt.
fleet_ok=0
for attempt in 1 2 3; do
  (cd build-release && ./bench/bench_fleet --smoke)
  if python3 scripts/perf_gate.py build-release/BENCH_fleet.json \
      --ceiling cells_shortfall=0 --ceiling us_per_decision_agg=200 \
      --ceiling decide_p99_ms=1.0 --ceiling identity_mismatches=0 \
      --ceiling warm_cold_ratio=0.5; then
    fleet_ok=1
    break
  fi
  echo "fleet gate: attempt $attempt/3 below threshold; re-measuring"
done
[[ "$fleet_ok" == 1 ]]
end_tier pass

if [[ "$FAST" == 1 ]]; then
  begin_tier "sanitizers (ASan/TSan/UBSan)"
  echo "skipped (--fast)"
  end_tier "SKIP (--fast)"
  begin_tier "lockdep (debug, fatal)"
  echo "skipped (--fast)"
  end_tier "SKIP (--fast)"
  echo
  echo "== fast checks passed =="
  exit 0
fi

begin_tier "ASan + UBSan + LSan"
# Leak detection is ON (no detect_leaks=0): ThreadPool shutdown and fixture
# teardown must release everything.
cmake -B build-asan -S . -DEDGEBOL_SANITIZE=address -DEDGEBOL_WERROR=ON >/dev/null
cmake --build build-asan -j >/dev/null
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)"
end_tier pass

begin_tier "TSan (threads 2, 8)"
# Runs the whole suite twice under ThreadSanitizer with the shared pool sized
# 2 then 8 (tests with explicit pools add their own counts on top).
# tsan.supp is intentionally empty — races get fixed, not suppressed.
cmake -B build-tsan -S . -DEDGEBOL_SANITIZE=thread -DEDGEBOL_WERROR=ON >/dev/null
cmake --build build-tsan -j >/dev/null
for threads in 2 8; do
  echo "-- TSan pass: EDGEBOL_THREADS=$threads --"
  TSAN_OPTIONS="suppressions=$PWD/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
    EDGEBOL_THREADS="$threads" \
    ctest --test-dir build-tsan --output-on-failure -j "$(nproc)"
done
end_tier pass

begin_tier "UBSan (standalone, fatal)"
# -fno-sanitize-recover=all: the first UB report aborts the test, so this
# tier cannot pass with findings scrolling by (the ASan tier's UBSan is
# recoverable and halts via halt_on_error instead).
cmake -B build-ubsan -S . -DEDGEBOL_SANITIZE=undefined -DEDGEBOL_WERROR=ON >/dev/null
cmake --build build-ubsan -j >/dev/null
ctest --test-dir build-ubsan --output-on-failure -j "$(nproc)"
end_tier pass

begin_tier "lockdep (debug, fatal)"
# Debug build (no NDEBUG): the EventLoop loop-affinity asserts are live and
# the sync death tests run. EDGEBOL_LOCKDEP=1 turns on runtime lock-order
# recording in common::Mutex; _FATAL=1 aborts on the first inversion, so a
# pass means the whole suite AND the three-process transport smoke ran with
# zero lock-order cycles against the DESIGN.md §5e hierarchy.
cmake -B build-lockdep -S . -DCMAKE_BUILD_TYPE=Debug -DEDGEBOL_WERROR=ON >/dev/null
cmake --build build-lockdep -j >/dev/null
EDGEBOL_LOCKDEP=1 EDGEBOL_LOCKDEP_FATAL=1 \
  ctest --test-dir build-lockdep --output-on-failure -j "$(nproc)"
EDGEBOL_LOCKDEP=1 EDGEBOL_LOCKDEP_FATAL=1 scripts/transport_smoke.sh build-lockdep
end_tier pass

begin_tier "transport (multi-process smoke)"
# Real three-OS-process O-RAN plane over TCP under both sanitizers: the
# loopback-equivalence check plus a partitioned run. Cross-process socket
# lifetimes, reconnect supervision, and shutdown ordering only get
# exercised here — in-process tests can't see them.
ASAN_OPTIONS=detect_leaks=1 scripts/transport_smoke.sh build-asan
TSAN_OPTIONS="suppressions=$PWD/tsan.supp halt_on_error=1" \
  scripts/transport_smoke.sh build-tsan
end_tier pass

echo
echo "== all checks passed =="
