#!/usr/bin/env bash
# Tier-1 verification, an optimized-build perf sanity pass, and an
# ASan+UBSan pass over the test suite.
#
#   scripts/check.sh            # tier-1 + release smoke + sanitizers
#   scripts/check.sh --fast     # tier-1 + release smoke only
#
# Builds live under build/, build-release/, and build-asan/ so repeat runs
# are incremental.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== release (-O2): tier-1 tests + GP engine smoke bench =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG" >/dev/null
cmake --build build-release -j >/dev/null
ctest --test-dir build-release --output-on-failure -j "$(nproc)"
# Engine-vs-reference correctness gate (1e-9) + per-phase timings; exits
# non-zero on mismatch. BENCH_gp.json lands in build-release/.
(cd build-release && ./bench/bench_micro_gp --smoke)

# Perf gate: every phase of the smoke bench must keep the engine at >= 0.95x
# of the reference implementation (timings are best-of-5, so a failure here
# is a real regression, not scheduler noise).
awk -F'"speedup": ' '/"speedup"/ {
  split($2, v, /[,}]/);
  if (v[1] + 0 < 0.95) { bad = 1; print "perf gate: speedup " v[1] " < 0.95" }
}
END { exit bad }' build-release/BENCH_gp.json
echo "perf gate: all phase speedups >= 0.95"

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipped sanitizer pass (--fast) =="
  exit 0
fi

# Covers the Givens-downdate paths (test_cholesky RemoveRow*, test_gp_budget)
# under ASan+UBSan along with everything else.
echo "== sanitizers: ASan + UBSan test pass =="
cmake -B build-asan -S . -DEDGEBOL_SANITIZE=ON >/dev/null
cmake --build build-asan -j >/dev/null
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=0 \
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo "== all checks passed =="
