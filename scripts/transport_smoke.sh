#!/usr/bin/env bash
# Multi-process transport smoke for the check.sh `transport` tier: boots the
# real three-process O-RAN plane (env / nearrt / nonrt as separate OS
# processes over TCP) from a given build, injects a short seeded E2
# partition, and asserts the learner still completes every period and writes
# a sane trajectory. Run it against the sanitizer builds — this is where
# cross-process socket lifetimes, reconnect races, and shutdown ordering
# actually get exercised.
#
#   scripts/transport_smoke.sh BUILD_DIR [PERIODS]
#
# Coverage matrix per invocation:
#   * `ric_node --verify-loopback` under BOTH event-loop backends
#     (EDGEBOL_NET_BACKEND=poll and =epoll): the TCP plane AND the
#     multiplexed plane must reproduce the in-process loopback trajectory
#     bit-for-bit on the same seed.
#   * one per-link TCP three-process run with a seeded E2 partition
#     (default backend);
#   * two multiplexed three-process runs (--mux: a1+o1, e2, svc as streams
#     over three MuxEndpoint connections) with the same partition, one per
#     backend — the epoll readv/writev batching path and the poll fallback
#     both face sanitizers here.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:?usage: transport_smoke.sh BUILD_DIR [PERIODS]}"
PERIODS="${2:-20}"
RIC_NODE="$BUILD_DIR/tools/ric_node"
[[ -x "$RIC_NODE" ]] || {
  echo "transport smoke: $RIC_NODE not built" >&2
  exit 1
}

DIR="$(mktemp -d "${TMPDIR:-/tmp}/edgebol-smoke.XXXXXX")"
PIDS=()
cleanup() {
  # Unblock any server role still waiting for its learner.
  for d in "$DIR"/*/; do touch "$d/done" 2>/dev/null || true; done
  for pid in "${PIDS[@]}"; do wait "$pid" 2>/dev/null || true; done
  rm -rf "$DIR"
}
trap cleanup EXIT

echo "-- transport smoke: verify-loopback ($PERIODS periods, poll backend) --"
EDGEBOL_NET_BACKEND=poll "$RIC_NODE" --verify-loopback --periods "$PERIODS"
echo "-- transport smoke: verify-loopback ($PERIODS periods, epoll backend) --"
EDGEBOL_NET_BACKEND=epoll "$RIC_NODE" --verify-loopback --periods "$PERIODS"

check_trajectory() {  # $1 = trajectory.json
  python3 - "$1" "$PERIODS" <<'EOF'
import json, math, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
want = int(sys.argv[2])
traj = data["trajectory"]
assert data["periods"] == want, f"ran {data['periods']} of {want} periods"
assert len(traj) == want, f"trajectory has {len(traj)} of {want} entries"
# Periods that ran dark during the partition report a null cost ("no KPI
# sample"); the plane must heal, so the run may not END dark and the dark
# stretch must stay a minority of the run.
dark = [i for i, p in enumerate(traj)
        if p["cost"] is None or not math.isfinite(p["cost"])]
assert len(dark) < want / 2, f"{len(dark)}/{want} periods ran dark: {dark}"
assert (want - 1) not in dark, "final period still dark - plane never healed"
assert math.isfinite(data["mean_cost"]), "mean cost not finite"
print(f"transport smoke: {want}/{want} periods, "
      f"{len(dark)} dark during the partition, healed by the end")
EOF
}

run_partitioned_plane() {  # $1 = tcp|mux, $2 = event-loop backend
  local mode="$1" backend="$2"
  local dir="$DIR/$mode-$backend"
  mkdir -p "$dir"
  local mux=()
  [[ "$mode" == mux ]] && mux=(--mux)
  echo "-- transport smoke: three $mode processes + 3s E2 partition" \
       "($backend backend) --"
  EDGEBOL_NET_BACKEND="$backend" \
    "$RIC_NODE" --role env --dir "$dir" ${mux[@]+"${mux[@]}"} &
  PIDS+=($!)
  # Partition opens at E2 establishment — clean periods take a few ms each,
  # so only an immediate window reliably forces the plane through its
  # degraded path (dropped control, timed-out ack, lost KPI) before healing.
  # 3s spans the first period's whole timeout chain, guaranteeing heartbeat
  # drops, a peer timeout, and reconnect churn even when sanitizer slowdown
  # shifts the period timing.
  EDGEBOL_NET_BACKEND="$backend" \
    "$RIC_NODE" --role nearrt --dir "$dir" ${mux[@]+"${mux[@]}"} \
    --e2-partition 0:3000 --chaos-seed 11 \
    2> >(tee "$dir/nearrt.log" >&2) &
  PIDS+=($!)
  EDGEBOL_NET_BACKEND="$backend" \
    "$RIC_NODE" --role nonrt --dir "$dir" ${mux[@]+"${mux[@]}"} \
    --periods "$PERIODS" --out "$dir/trajectory.json"

  for pid in "${PIDS[@]}"; do wait "$pid"; done
  PIDS=()

  # The window must have actually silenced the hop (heartbeats count, so
  # this holds however sanitizer slowdown shifts the period timing).
  grep -q "partition_drops=[1-9]" "$dir/nearrt.log" || {
    echo "transport smoke: partition window never dropped a frame" >&2
    exit 1
  }
  check_trajectory "$dir/trajectory.json"
}

run_partitioned_plane tcp epoll
run_partitioned_plane mux epoll
run_partitioned_plane mux poll
